// Scrub-and-repair, health quarantine, and replica failover tests: the
// fault-tolerant tertiary path detects corrupted media, repairs from
// replicas, quarantines failing volumes, and records (never crashes on)
// unrecoverable losses.

#include <gtest/gtest.h>

#include <algorithm>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  // Migrates `/f` holding `data`, returning the file's primary tseg.
  uint32_t MigrateOneSegment(const std::vector<uint8_t>& data, int replicas) {
    Result<uint32_t> ino = hl_->fs().Create("/f");
    EXPECT_TRUE(ino.ok());
    ino_ = *ino;
    EXPECT_TRUE(hl_->fs().Write(ino_, 0, data).ok());
    MigratorOptions opts;
    opts.replicas = replicas;
    Result<MigrationReport> r = hl_->Internals().migrator.MigrateFiles({ino_}, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(hl_->DropCleanCacheLines().ok());
    for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
      const SegUsage& u = hl_->Internals().tseg_table.Get(t);
      if (!(u.flags & kSegClean) && !(u.flags & kSegReplica)) {
        return t;
      }
    }
    ADD_FAILURE() << "no primary tseg after migration";
    return kNoSegment;
  }

  // Scribbles over the on-medium image of `tseg`.
  void CorruptOnMedium(uint32_t tseg) {
    uint32_t volume = hl_->Internals().address_map.VolumeOfTseg(tseg);
    Result<Volume*> vol = hl_->Internals().footprint.GetVolume(static_cast<int>(volume));
    ASSERT_TRUE(vol.ok());
    std::vector<uint8_t> junk(kBlockSize, 0xA5);
    ASSERT_TRUE(
        (*vol)->Write(hl_->Internals().address_map.ByteOffsetOnVolume(tseg), junk).ok());
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
  uint32_t ino_ = kNoInode;
};

TEST_F(ScrubTest, ScrubDetectsAndRepairsFromReplica) {
  auto data = Pattern(256 * 1024, 1);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/1);
  ASSERT_NE(tseg, kNoSegment);
  CorruptOnMedium(tseg);

  Result<Scrubber::Report> report = hl_->Internals().scrubber.ScrubAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->scanned, 0u);
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_EQ(report->unrecoverable, 0u);
  EXPECT_TRUE(hl_->Internals().scrubber.LostSegments().empty());
  EXPECT_EQ(hl_->Internals().scrubber.stats().repairs, 1u);

  // The repaired primary serves reads again (uncached, from the medium).
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(ino_, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
}

TEST_F(ScrubTest, ScrubRecordsUnrecoverableLoss) {
  auto data = Pattern(256 * 1024, 2);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/0);
  ASSERT_NE(tseg, kNoSegment);
  CorruptOnMedium(tseg);

  // No replica anywhere: the scrubber records the loss instead of crashing.
  Result<Scrubber::Report> report = hl_->Internals().scrubber.ScrubAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->repaired, 0u);
  EXPECT_EQ(report->unrecoverable, 1u);
  EXPECT_EQ(hl_->Internals().scrubber.LostSegments().count(tseg), 1u);

  // The damage is contained: the read fails cleanly with a corruption
  // error, and the rest of the system keeps working.
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(ino_, 0, out);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kCorruption);
  Result<uint32_t> other = hl_->fs().Create("/g");
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(hl_->fs().Write(*other, 0, Pattern(64 * 1024, 3)).ok());
  ASSERT_TRUE(hl_->fs().Sync().ok());
}

TEST_F(ScrubTest, ScrubRebuildsCrcCatalogAfterRemount) {
  auto data = Pattern(256 * 1024, 4);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/0);
  ASSERT_NE(tseg, kNoSegment);

  // The CRC catalog is in-core only: a crash + remount empties it.
  ASSERT_TRUE(hl_->Remount().ok());
  EXPECT_EQ(hl_->Internals().tseg_table.CrcCount(), 0u);

  // A scrub pass verifies each image against the media's own summary
  // checksums and restamps the catalog.
  Result<Scrubber::Report> report = hl_->Internals().scrubber.ScrubAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->crcs_stamped, 0u);
  EXPECT_EQ(report->unrecoverable, 0u);
  EXPECT_GT(hl_->Internals().tseg_table.CrcCount(), 0u);

  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  Result<size_t> n = hl_->fs().Read(ino_, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
}

TEST_F(ScrubTest, FetchFailsOverToReplica) {
  auto data = Pattern(256 * 1024, 5);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/1);
  ASSERT_NE(tseg, kNoSegment);

  // Mount the primary's volume so source selection ranks it first (the
  // replica's volume was mounted last by the migration)...
  uint32_t volume = hl_->Internals().address_map.VolumeOfTseg(tseg);
  std::vector<uint8_t> sector(4096);
  ASSERT_TRUE(
      hl_->Internals().footprint.Read(static_cast<int>(volume), 0, sector).ok());
  // ...then kill it outright: every read on it fails from now on.
  Result<Volume*> vol = hl_->Internals().footprint.GetVolume(static_cast<int>(volume));
  ASSERT_TRUE(vol.ok());
  FaultChannel* channel = hl_->Internals().faults.Find("volume." + (*vol)->label());
  ASSERT_NE(channel, nullptr);
  channel->KillAt(clock_.Now());

  // The demand fetch exhausts its retries on the primary, then fails over
  // to the replica and serves the data.
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(ino_, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
  EXPECT_GT(hl_->Internals().io_server.stats().failovers, 0u);
  EXPECT_GT(hl_->Internals().io_server.stats().replica_reads, 0u);
  // The repeated failures pushed the dead volume out of the healthy state.
  EXPECT_NE(hl_->Internals().health.VolumeState(volume), HealthState::kHealthy);
}

TEST_F(ScrubTest, QuarantineExcludesVolumeFromMigrationTargets) {
  // Land a first file somewhere, then quarantine that volume.
  auto data = Pattern(256 * 1024, 6);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/0);
  ASSERT_NE(tseg, kNoSegment);
  uint32_t volume = hl_->Internals().address_map.VolumeOfTseg(tseg);

  for (int i = 0; i < hl_->Internals().health.policy().quarantine_after; ++i) {
    hl_->Internals().health.RecordVolumeFailure(volume);
  }
  ASSERT_EQ(hl_->Internals().health.VolumeState(volume), HealthState::kQuarantined);
  ASSERT_EQ(hl_->Internals().health.QuarantinedVolumes().count(volume), 1u);

  // New migrations must avoid the quarantined volume.
  std::set<uint32_t> before;
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    if (!(hl_->Internals().tseg_table.Get(t).flags & kSegClean)) {
      before.insert(t);
    }
  }
  Result<uint32_t> ino = hl_->fs().Create("/g");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 7)).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/g"}).ok());
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    if ((hl_->Internals().tseg_table.Get(t).flags & kSegClean) || before.count(t)) {
      continue;
    }
    EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(t), volume)
        << "fresh tseg " << t << " landed on the quarantined volume";
  }

  // An operator reinstate clears the quarantine.
  hl_->Internals().health.ReinstateVolume(volume);
  EXPECT_EQ(hl_->Internals().health.VolumeState(volume), HealthState::kHealthy);
  EXPECT_TRUE(hl_->Internals().health.QuarantinedVolumes().empty());

  // Everything written is still readable and the image is sound.
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  FsckReport report = CheckFs(hl_->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);
}

TEST_F(ScrubTest, LatentSectorErrorRepairedFromReplica) {
  auto data = Pattern(256 * 1024, 8);
  uint32_t tseg = MigrateOneSegment(data, /*replicas=*/1);
  ASSERT_NE(tseg, kNoSegment);

  // Plant a latent sector error inside the primary's extent: reads covering
  // it fail with a media error until the extent is rewritten.
  uint32_t volume = hl_->Internals().address_map.VolumeOfTseg(tseg);
  Result<Volume*> vol = hl_->Internals().footprint.GetVolume(static_cast<int>(volume));
  ASSERT_TRUE(vol.ok());
  FaultChannel* channel = hl_->Internals().faults.Find("volume." + (*vol)->label());
  ASSERT_NE(channel, nullptr);
  channel->AddLatentError(
      hl_->Internals().address_map.ByteOffsetOnVolume(tseg) + 4096, 512);

  // The scrubber's read hits the bad sector, and the repair write (which
  // remaps it) restores the segment from the replica.
  Result<Scrubber::Report> report = hl_->Internals().scrubber.ScrubAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_EQ(channel->LatentErrorCount(), 0u);

  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(ino_, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace hl
