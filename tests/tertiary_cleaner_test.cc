// Tests for the tertiary cleaner extension (the paper's section 10 future
// work): whole-volume reclamation with live-data relocation.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class TertiaryCleanerTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(/*write_once=*/false); }

  void Build(bool write_once) {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 12ull * 64 * kBlockSize;  // 12 segments/volume.
    config.jukeboxes.push_back({j, write_once, 12});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 10;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  uint32_t MakeAndMigrate(const std::string& path, size_t bytes,
                          uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().Create(path);
    EXPECT_TRUE(ino.ok());
    EXPECT_TRUE(hl_->fs().Write(*ino, 0, Pattern(bytes, seed)).ok());
    EXPECT_TRUE(hl_->Migrate(MigrationRequest{.path = path}).ok());
    return *ino;
  }

  void ExpectContents(const std::string& path, size_t bytes, uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok());
    std::vector<uint8_t> out(bytes);
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out, Pattern(bytes, seed)) << path;
  }

  uint64_t VolumeLiveBytes(uint32_t volume) {
    uint64_t live = 0;
    uint32_t first = hl_->Internals().address_map.FirstTsegOfVolume(volume);
    for (uint32_t s = 0; s < hl_->Internals().address_map.segs_per_volume(); ++s) {
      live += hl_->Internals().tseg_table.Get(first + s).live_bytes;
    }
    return live;
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(TertiaryCleanerTest, ReclaimsFullyDeadVolume) {
  MakeAndMigrate("/dead", 1 << 20, 1);
  ASSERT_TRUE(hl_->fs().Unlink("/dead").ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  EXPECT_LT(VolumeLiveBytes(0), 4096u);

  Result<uint64_t> moved = hl_->Internals().tertiary_cleaner.CleanVolume(0);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(*moved, 0u);  // Nothing live to move.
  EXPECT_GT(hl_->Internals().tertiary_cleaner.stats().segments_reclaimed, 0u);

  // The volume's segments are clean again and allocatable.
  uint32_t first = hl_->Internals().address_map.FirstTsegOfVolume(0);
  for (uint32_t s = 0; s < hl_->Internals().address_map.segs_per_volume(); ++s) {
    EXPECT_TRUE(hl_->Internals().tseg_table.Get(first + s).flags & kSegClean);
  }
  EXPECT_EQ(hl_->Internals().tseg_table.NextFreshTseg({}), first);
}

TEST_F(TertiaryCleanerTest, RelocatesLiveDataBeforeErasing) {
  // Two files on volume 0; one dies, the other must survive the clean.
  uint32_t keep = MakeAndMigrate("/keep", 512 * 1024, 2);
  MakeAndMigrate("/kill", 512 * 1024, 3);
  ASSERT_TRUE(hl_->fs().Unlink("/kill").ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());

  Result<uint64_t> moved = hl_->Internals().tertiary_cleaner.CleanVolume(0);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_GT(*moved, 0u);

  // /keep now lives on another volume (volume 0 is excluded during the
  // clean), and its contents are intact even with the cache dropped.
  Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(keep);
  ASSERT_TRUE(refs.ok());
  for (const BlockRef& r : *refs) {
    ASSERT_EQ(hl_->Internals().address_map.Classify(r.daddr),
              AddressMap::Zone::kTertiary);
    EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(
                  hl_->Internals().address_map.TsegOf(r.daddr)),
              0u);
  }
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectContents("/keep", 512 * 1024, 2);
}

TEST_F(TertiaryCleanerTest, MigratedInodesFollowTheirBlocks) {
  uint32_t ino = MakeAndMigrate("/with-inode", 256 * 1024, 4);
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  Result<uint32_t> daddr_before = hl_->fs().InodeDaddr(ino);
  ASSERT_TRUE(daddr_before.ok());
  ASSERT_EQ(hl_->Internals().address_map.Classify(*daddr_before),
            AddressMap::Zone::kTertiary);

  ASSERT_TRUE(hl_->Internals().tertiary_cleaner.CleanVolume(0).ok());
  Result<uint32_t> daddr_after = hl_->fs().InodeDaddr(ino);
  ASSERT_TRUE(daddr_after.ok());
  EXPECT_EQ(hl_->Internals().address_map.Classify(*daddr_after),
            AddressMap::Zone::kTertiary);
  EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(
                hl_->Internals().address_map.TsegOf(*daddr_after)),
            0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectContents("/with-inode", 256 * 1024, 4);
}

TEST_F(TertiaryCleanerTest, CleanedStateSurvivesRemount) {
  MakeAndMigrate("/durable", 512 * 1024, 5);
  ASSERT_TRUE(hl_->Internals().tertiary_cleaner.CleanVolume(0).ok());
  ASSERT_TRUE(hl_->Remount().ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectContents("/durable", 512 * 1024, 5);
}

TEST_F(TertiaryCleanerTest, WornVolumeSelectionPicksEmptiest) {
  // Fill volume 0 with a dead file and volume 1 with a live file.
  MakeAndMigrate("/dead", 2 << 20, 6);   // Fills most of volume 0 (12 segs).
  MakeAndMigrate("/live", 2 << 20, 7);
  ASSERT_TRUE(hl_->fs().Unlink("/dead").ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());

  Result<uint64_t> moved = hl_->Internals().tertiary_cleaner.CleanWorstVolume(0.9);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  // Volume 0 (the dead one) was chosen: nothing live should have moved...
  // unless /live shared a segment on volume 0. Either way, /live survives.
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectContents("/live", 2 << 20, 7);
}

TEST_F(TertiaryCleanerTest, NoQualifyingVolumeIsNotFound) {
  MakeAndMigrate("/all-live", 1 << 20, 8);
  // Everything written is live: a 0.01 threshold excludes the volume.
  Result<uint64_t> r = hl_->Internals().tertiary_cleaner.CleanWorstVolume(0.01);
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(TertiaryCleanerTest, WormVolumesRefuseCleaning) {
  Build(/*write_once=*/true);
  MakeAndMigrate("/worm-file", 256 * 1024, 9);
  EXPECT_EQ(hl_->Internals().tertiary_cleaner.CleanVolume(0).status().code(),
            ErrorCode::kNotSupported);
}

TEST_F(TertiaryCleanerTest, ReclaimedSpaceIsReusable) {
  // Fill tertiary space, delete, clean, and migrate again into the
  // reclaimed volume — the full lifecycle.
  for (int i = 0; i < 3; ++i) {
    MakeAndMigrate("/gen0-" + std::to_string(i), 1 << 20, 10 + i);
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(hl_->fs().Unlink("/gen0-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  ASSERT_TRUE(hl_->Internals().tertiary_cleaner.CleanVolume(0).ok());

  uint32_t ino = MakeAndMigrate("/gen1", 1 << 20, 20);
  Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
  ASSERT_TRUE(refs.ok());
  // New data landed on the reclaimed volume 0 (it is first in volume order).
  bool on_volume0 = false;
  for (const BlockRef& r : *refs) {
    if (hl_->Internals().address_map.VolumeOfTseg(
            hl_->Internals().address_map.TsegOf(r.daddr)) == 0) {
      on_volume0 = true;
    }
  }
  EXPECT_TRUE(on_volume0);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectContents("/gen1", 1 << 20, 20);
}

}  // namespace
}  // namespace hl
