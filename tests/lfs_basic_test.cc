// End-to-end tests of the base LFS: namespace operations, file I/O, large
// files through indirect blocks, truncation, and segment-log behaviour.

#include <gtest/gtest.h>

#include <cstring>

#include "blockdev/sim_disk.h"
#include "lfs/lfs.h"
#include "util/rng.h"

namespace hl {
namespace {

constexpr uint32_t kTestDiskBlocks = 16 * 1024;  // 64 MB.

class LfsBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", kTestDiskBlocks, Rz57Profile(),
                                      &clock_);
    LfsParams params;
    params.seg_size_blocks = 64;  // 256 KB segments: more log turnover.
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
  }

  std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint8_t> v(n);
    for (auto& b : v) {
      b = static_cast<uint8_t>(rng.Next());
    }
    return v;
  }

  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(LfsBasicTest, RootExistsAfterMkfs) {
  Result<StatInfo> st = fs_->StatPath("/");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->ino, kRootInode);
  EXPECT_EQ(st->type, FileType::kDirectory);
}

TEST_F(LfsBasicTest, CreateWriteReadSmallFile) {
  Result<uint32_t> ino = fs_->Create("/hello.txt");
  ASSERT_TRUE(ino.ok()) << ino.status().ToString();
  std::string text = "hello, tertiary world";
  ASSERT_TRUE(fs_->Write(*ino, 0,
                         std::span<const uint8_t>(
                             reinterpret_cast<const uint8_t*>(text.data()),
                             text.size()))
                  .ok());
  std::vector<uint8_t> out(text.size());
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, text.size());
  EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST_F(LfsBasicTest, CreateDuplicateFails) {
  ASSERT_TRUE(fs_->Create("/a").ok());
  EXPECT_EQ(fs_->Create("/a").status().code(), ErrorCode::kExists);
}

TEST_F(LfsBasicTest, LookupMissingFails) {
  EXPECT_EQ(fs_->LookupPath("/nope").status().code(), ErrorCode::kNotFound);
}

TEST_F(LfsBasicTest, NestedDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/data").ok());
  ASSERT_TRUE(fs_->Mkdir("/data/satellite").ok());
  Result<uint32_t> ino = fs_->Create("/data/satellite/img001");
  ASSERT_TRUE(ino.ok());
  EXPECT_TRUE(fs_->LookupPath("/data/satellite/img001").ok());

  Result<std::vector<DirEntry>> entries = fs_->ReadDir(
      *fs_->LookupPath("/data/satellite"));
  ASSERT_TRUE(entries.ok());
  // ".", "..", "img001".
  EXPECT_EQ(entries->size(), 3u);
}

TEST_F(LfsBasicTest, UnlinkFreesAndForgets) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(8192, 1)).ok());
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_FALSE(fs_->LookupPath("/f").ok());
  EXPECT_FALSE(fs_->Stat(*ino).ok());
  // The inode number is recycled eventually.
  Result<uint32_t> again = fs_->Create("/g");
  ASSERT_TRUE(again.ok());
}

TEST_F(LfsBasicTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Create("/d/x").ok());
  EXPECT_EQ(fs_->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_->Unlink("/d/x").ok());
  EXPECT_TRUE(fs_->Rmdir("/d").ok());
  EXPECT_FALSE(fs_->LookupPath("/d").ok());
}

TEST_F(LfsBasicTest, UnlinkDirectoryRejected) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Unlink("/d").code(), ErrorCode::kIsADirectory);
}

TEST_F(LfsBasicTest, RenameMovesFile) {
  Result<uint32_t> ino = fs_->Create("/old");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Mkdir("/sub").ok());
  ASSERT_TRUE(fs_->Rename("/old", "/sub/new").ok());
  EXPECT_FALSE(fs_->LookupPath("/old").ok());
  Result<uint32_t> moved = fs_->LookupPath("/sub/new");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, *ino);
}

TEST_F(LfsBasicTest, OverwriteInMiddleOfFile) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(64 * 1024, 2);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  // Overwrite an unaligned 1000-byte span in the middle.
  auto patch = Pattern(1000, 3);
  ASSERT_TRUE(fs_->Write(*ino, 12345, patch).ok());
  std::memcpy(data.data() + 12345, patch.data(), patch.size());

  std::vector<uint8_t> out(data.size());
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
}

TEST_F(LfsBasicTest, ReadPastEofReturnsShort) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(100, 4)).ok());
  std::vector<uint8_t> out(1000);
  Result<size_t> n = fs_->Read(*ino, 50, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  EXPECT_EQ(*fs_->Read(*ino, 100, out), 0u);
  EXPECT_EQ(*fs_->Read(*ino, 5000, out), 0u);
}

TEST_F(LfsBasicTest, SparseFileReadsZeros) {
  Result<uint32_t> ino = fs_->Create("/sparse");
  ASSERT_TRUE(ino.ok());
  auto tail = Pattern(4096, 5);
  ASSERT_TRUE(fs_->Write(*ino, 1 << 20, tail).ok());  // Hole below 1 MB.
  std::vector<uint8_t> out(4096, 0xFF);
  ASSERT_TRUE(fs_->Read(*ino, 4096, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
  ASSERT_TRUE(fs_->Read(*ino, 1 << 20, out).ok());
  EXPECT_EQ(out, tail);
}

TEST_F(LfsBasicTest, LargeFileThroughIndirectBlocks) {
  Result<uint32_t> ino = fs_->Create("/big");
  ASSERT_TRUE(ino.ok());
  // 6 MB spans direct + single-indirect + double-indirect ranges.
  const size_t kSize = 6u << 20;
  auto data = Pattern(kSize, 6);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok()) << "write failed";
  ASSERT_TRUE(fs_->Sync().ok());
  fs_->FlushBufferCache();

  std::vector<uint8_t> out(kSize);
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, kSize);
  EXPECT_EQ(out, data);

  Result<StatInfo> st = fs_->Stat(*ino);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, kSize);
  // Blocks: 1536 data + 1 single indirect + 1 dind root + 1 dind child.
  EXPECT_GE(st->blocks, 1536u);
}

TEST_F(LfsBasicTest, TruncateShrinksAndFrees) {
  Result<uint32_t> ino = fs_->Create("/t");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1 << 20, 7)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  uint32_t blocks_before = fs_->Stat(*ino)->blocks;
  ASSERT_TRUE(fs_->Truncate(*ino, 8192).ok());
  Result<StatInfo> st = fs_->Stat(*ino);
  EXPECT_EQ(st->size, 8192u);
  EXPECT_LT(st->blocks, blocks_before);
  // Data below the cut survives.
  std::vector<uint8_t> out(8192);
  ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
  std::vector<uint8_t> expected = Pattern(1 << 20, 7);
  expected.resize(8192);
  EXPECT_EQ(out, expected);
}

TEST_F(LfsBasicTest, TimesMaintained) {
  Result<uint32_t> ino = fs_->Create("/times");
  ASSERT_TRUE(ino.ok());
  uint64_t t0 = fs_->Stat(*ino)->mtime;
  clock_.Advance(5 * kUsPerSec);
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(10, 8)).ok());
  EXPECT_GT(fs_->Stat(*ino)->mtime, t0);
  clock_.Advance(5 * kUsPerSec);
  std::vector<uint8_t> out(10);
  ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
  EXPECT_GT(fs_->Stat(*ino)->atime, fs_->Stat(*ino)->mtime);
}

TEST_F(LfsBasicTest, SyncWritesSegmentsAndAdvancesLog) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  uint64_t psegs_before = fs_->stats().psegs_written;
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1 << 20, 9)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_GT(fs_->stats().psegs_written, psegs_before);
  EXPECT_EQ(fs_->DirtyBytes(), 0u);
}

TEST_F(LfsBasicTest, ManySmallFiles) {
  for (int i = 0; i < 200; ++i) {
    std::string path = "/file" + std::to_string(i);
    Result<uint32_t> ino = fs_->Create(path);
    ASSERT_TRUE(ino.ok()) << path << ": " << ino.status().ToString();
    ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1024, 100 + i)).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  for (int i = 0; i < 200; i += 17) {
    std::string path = "/file" + std::to_string(i);
    Result<uint32_t> ino = fs_->LookupPath(path);
    ASSERT_TRUE(ino.ok());
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
    EXPECT_EQ(out, Pattern(1024, 100 + i));
  }
}

TEST_F(LfsBasicTest, FileTooLargeRejected) {
  Result<uint32_t> ino = fs_->Create("/huge");
  ASSERT_TRUE(ino.ok());
  uint64_t beyond = (kMaxFileBlocks + 1) * kBlockSize;
  std::vector<uint8_t> byte(1, 0);
  EXPECT_EQ(fs_->Write(*ino, beyond, byte).code(),
            ErrorCode::kFileTooLarge);
}

TEST_F(LfsBasicTest, InodeMapGrowsOnDemand) {
  LfsParams params;
  params.seg_size_blocks = 64;
  params.initial_max_inodes = 8;  // Tiny: forces growth.
  SimDisk disk2("d2", kTestDiskBlocks, Rz57Profile(), &clock_);
  auto fs = Lfs::Mkfs(&disk2, &clock_, params);
  ASSERT_TRUE(fs.ok());
  for (int i = 0; i < 30; ++i) {
    Result<uint32_t> ino = (*fs)->Create("/f" + std::to_string(i));
    ASSERT_TRUE(ino.ok()) << i << ": " << ino.status().ToString();
  }
  ASSERT_TRUE((*fs)->Checkpoint().ok());
}

}  // namespace
}  // namespace hl
