// End-to-end HighLight tests: migrate files to tertiary storage, demand-fetch
// them back through the cache, survive end-of-medium, partial-file
// migration, and remount with tertiary-resident files.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

JukeboxProfile SmallJukebox(int slots, uint64_t volume_bytes) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = slots;
  j.volume_capacity_bytes = volume_bytes;
  return j;
}

class HighLightTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(/*delayed=*/false); }

  void Build(bool delayed) {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});  // 64 MB.
    // 4 volumes x 20 segments of 256 KB = 5 MB per volume.
    config.jukeboxes.push_back(
        {SmallJukebox(4, 20ull * 64 * kBlockSize), false, 20});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.migrator.delayed_copyout = delayed;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  // Creates a file with deterministic contents.
  uint32_t MakeFile(const std::string& path, size_t bytes, uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().Create(path);
    EXPECT_TRUE(ino.ok()) << ino.status().ToString();
    EXPECT_TRUE(hl_->fs().Write(*ino, 0, Pattern(bytes, seed)).ok());
    return *ino;
  }

  void ExpectFileContents(const std::string& path, size_t bytes,
                          uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok()) << path;
    std::vector<uint8_t> out(bytes);
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, bytes);
    EXPECT_EQ(out, Pattern(bytes, seed)) << path << " contents differ";
  }

  // True if every data block of the file has a tertiary address.
  bool FullyMigrated(uint32_t ino) {
    Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
    EXPECT_TRUE(refs.ok());
    for (const BlockRef& r : *refs) {
      if (hl_->Internals().address_map.Classify(r.daddr) !=
          AddressMap::Zone::kTertiary) {
        return false;
      }
    }
    return !refs->empty();
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(HighLightTest, WholeFileMigrationRoundTrip) {
  MakeFile("/cold", 1 << 20, 1);
  Result<uint32_t> ino = hl_->fs().LookupPath("/cold");
  ASSERT_TRUE(ino.ok());

  Result<MigrationReport> report = hl_->Migrate(MigrationRequest{.path = "/cold"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->files_migrated, 1u);
  EXPECT_GE(report->blocks_migrated, 256u);  // 1 MB of 4 KB blocks.
  EXPECT_TRUE(FullyMigrated(*ino));
  // The inode itself migrated: its map address is tertiary.
  // (Read through the cache still works.)
  ExpectFileContents("/cold", 1 << 20, 1);
}

TEST_F(HighLightTest, DemandFetchAfterCacheDrop) {
  MakeFile("/cold", 1 << 20, 2);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/cold"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  EXPECT_EQ(hl_->Internals().cache.Used(), 0u);

  uint64_t fetches_before = hl_->Internals().service.stats().demand_fetches;
  SimTime t0 = clock_.Now();
  ExpectFileContents("/cold", 1 << 20, 2);
  EXPECT_GT(hl_->Internals().service.stats().demand_fetches, fetches_before);
  // The first access paid tertiary latency (media swap and/or MO read).
  EXPECT_GT(clock_.Now() - t0, 1 * kUsPerSec);

  // Second read: served from the cache, quickly.
  t0 = clock_.Now();
  ExpectFileContents("/cold", 1 << 20, 2);
  EXPECT_LT(clock_.Now() - t0, 5 * kUsPerSec);
}

TEST_F(HighLightTest, ApplicationsNeedNoSpecialActions) {
  // The paper's core promise: same API before and after migration.
  uint32_t ino = MakeFile("/transparent", 300 * 1024, 3);
  ExpectFileContents("/transparent", 300 * 1024, 3);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/transparent"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/transparent", 300 * 1024, 3);
  // Writes still work: they land on disk (new version supersedes tertiary).
  auto patch = Pattern(5000, 4);
  ASSERT_TRUE(hl_->fs().Write(ino, 100, patch).ok());
  std::vector<uint8_t> out(5000);
  ASSERT_TRUE(hl_->fs().Read(ino, 100, out).ok());
  EXPECT_EQ(out, patch);
}

TEST_F(HighLightTest, UpdatesToMigratedFilesAppendToDiskLog) {
  uint32_t ino = MakeFile("/updatable", 256 * 1024, 5);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/updatable"}).ok());
  ASSERT_TRUE(FullyMigrated(ino));

  // Overwrite one block; it must come back disk-resident.
  ASSERT_TRUE(hl_->fs().Write(ino, 8192, Pattern(4096, 6)).ok());
  ASSERT_TRUE(hl_->fs().Sync().ok());
  Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
  ASSERT_TRUE(refs.ok());
  bool block2_on_disk = false;
  for (const BlockRef& r : *refs) {
    if (r.lbn == 2) {
      block2_on_disk = hl_->Internals().address_map.Classify(r.daddr) ==
                       AddressMap::Zone::kDisk;
    }
  }
  EXPECT_TRUE(block2_on_disk);
  // And the tseg table lost the superseded block's live bytes.
  EXPECT_LT(hl_->Internals().tseg_table.TotalLiveBytes(), (256u * 1024) + 8192);
}

TEST_F(HighLightTest, PartialFileBlockRangeMigration) {
  uint32_t ino = MakeFile("/dbfile", 512 * 1024, 7);
  // Migrate only the first 64 blocks (the "dormant tuples").
  std::vector<uint32_t> lbns;
  for (uint32_t l = 0; l < 64; ++l) {
    lbns.push_back(l);
  }
  MigratorOptions opts;
  Result<MigrationReport> report =
      hl_->Internals().migrator.MigrateBlocks(ino, lbns, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->blocks_migrated, 64u);

  // The inode stays on disk; the file is split across levels.
  Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
  ASSERT_TRUE(refs.ok());
  int tertiary = 0, disk = 0;
  for (const BlockRef& r : *refs) {
    if (IsMetaLbn(r.lbn)) {
      continue;
    }
    if (hl_->Internals().address_map.Classify(r.daddr) == AddressMap::Zone::kTertiary) {
      ++tertiary;
    } else {
      ++disk;
    }
  }
  EXPECT_EQ(tertiary, 64);
  EXPECT_EQ(disk, 64);
  ExpectFileContents("/dbfile", 512 * 1024, 7);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/dbfile", 512 * 1024, 7);
}

TEST_F(HighLightTest, DirectoriesAndMetadataCanMigrate) {
  ASSERT_TRUE(hl_->fs().Mkdir("/archive").ok());
  MakeFile("/archive/a", 100 * 1024, 8);
  MakeFile("/archive/b", 100 * 1024, 9);
  // Migrate the directory file itself along with its children.
  Result<uint32_t> dir_ino = hl_->fs().LookupPath("/archive");
  ASSERT_TRUE(dir_ino.ok());
  Result<uint32_t> a_ino = hl_->fs().LookupPath("/archive/a");
  Result<uint32_t> b_ino = hl_->fs().LookupPath("/archive/b");
  ASSERT_TRUE(a_ino.ok());
  ASSERT_TRUE(b_ino.ok());
  MigratorOptions opts;
  Result<MigrationReport> report = hl_->Internals().migrator.MigrateFiles(
      {*a_ino, *b_ino, *dir_ino}, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  // Path lookup now demand-fetches the directory from tertiary storage.
  ExpectFileContents("/archive/a", 100 * 1024, 8);
  ExpectFileContents("/archive/b", 100 * 1024, 9);
}

TEST_F(HighLightTest, EndOfMediumRetargetsToNextVolume) {
  // Shrink volume 0's real capacity to force end-of-medium mid-stream.
  Result<Volume*> vol = hl_->Internals().footprint.GetVolume(0);
  ASSERT_TRUE(vol.ok());
  (*vol)->SetActualCapacity(3 * 64 * kBlockSize);  // Room for 3 segments.

  MakeFile("/big", 2 << 20, 10);  // 2 MB = 8 segments (+ metadata).
  Result<MigrationReport> report = hl_->Migrate(MigrationRequest{.path = "/big"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(hl_->Internals().migrator.lifetime_report().eom_retargets, 0u);

  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/big", 2 << 20, 10);
}

TEST_F(HighLightTest, DelayedCopyOutBatchesTertiaryWrites) {
  Build(/*delayed=*/true);
  MakeFile("/cold1", 512 * 1024, 11);
  MakeFile("/cold2", 512 * 1024, 12);
  Result<uint32_t> i1 = hl_->fs().LookupPath("/cold1");
  Result<uint32_t> i2 = hl_->fs().LookupPath("/cold2");
  ASSERT_TRUE(i1.ok());
  ASSERT_TRUE(i2.ok());
  MigratorOptions opts;
  opts.delayed_copyout = true;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*i1, *i2}, opts).ok());
  // Segments staged but not yet on media.
  EXPECT_GT(hl_->Internals().migrator.PendingSegments(), 0u);
  uint64_t copied_before = hl_->Internals().io_server.stats().segments_copied_out;
  EXPECT_EQ(copied_before, 0u);

  // Data remain readable from the staged (pinned) cache lines.
  ExpectFileContents("/cold1", 512 * 1024, 11);

  // The idle-time flush pushes everything to media.
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);
  EXPECT_GT(hl_->Internals().io_server.stats().segments_copied_out, 0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/cold1", 512 * 1024, 11);
  ExpectFileContents("/cold2", 512 * 1024, 12);
}

TEST_F(HighLightTest, MigratedStateSurvivesRemount) {
  MakeFile("/durable", 1 << 20, 13);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/durable"}).ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());

  ASSERT_TRUE(hl_->Remount().ok());
  ExpectFileContents("/durable", 1 << 20, 13);

  // Also after dropping the (rebuilt) cache: demand fetch from media.
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/durable", 1 << 20, 13);
}

TEST_F(HighLightTest, StpPolicyMigratesColdLargeFilesFirst) {
  MakeFile("/hot", 256 * 1024, 14);
  MakeFile("/cold-big", 512 * 1024, 15);
  MakeFile("/cold-small", 16 * 1024, 16);
  // Everything ages 100 s; then /hot is touched.
  clock_.Advance(100 * kUsPerSec);
  std::vector<uint8_t> buf(1024);
  Result<uint32_t> hot = hl_->fs().LookupPath("/hot");
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(hl_->fs().Read(*hot, 0, buf).ok());

  StpPolicy stp;
  Result<std::vector<FileCandidate>> ranked =
      stp.Rank(hl_->fs(), clock_.Now());
  ASSERT_TRUE(ranked.ok());
  ASSERT_GE(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].path, "/cold-big");
  EXPECT_EQ((*ranked)[1].path, "/cold-small");
  EXPECT_EQ((*ranked)[2].path, "/hot");

  // Migrate ~the best candidate only.
  Result<MigrationReport> report = hl_->Migrate(MigrationRequest{.policy = &stp, .bytes_target = 1});
  ASSERT_TRUE(report.ok());
  Result<uint32_t> cold = hl_->fs().LookupPath("/cold-big");
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(FullyMigrated(*cold));
  EXPECT_FALSE(FullyMigrated(*hot));
}

TEST_F(HighLightTest, NamespacePolicyKeepsUnitsAdjacent) {
  ASSERT_TRUE(hl_->fs().Mkdir("/proj1").ok());
  ASSERT_TRUE(hl_->fs().Mkdir("/proj2").ok());
  MakeFile("/proj1/a", 64 * 1024, 17);
  MakeFile("/proj1/b", 64 * 1024, 18);
  MakeFile("/proj2/x", 64 * 1024, 19);
  MakeFile("/proj2/y", 64 * 1024, 20);
  clock_.Advance(50 * kUsPerSec);

  NamespacePolicy ns;
  Result<std::vector<FileCandidate>> ranked =
      ns.Rank(hl_->fs(), clock_.Now());
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  // Unit members are adjacent in the ranking.
  EXPECT_EQ((*ranked)[0].unit, (*ranked)[1].unit);
  EXPECT_EQ((*ranked)[2].unit, (*ranked)[3].unit);
  EXPECT_NE((*ranked)[0].unit, (*ranked)[2].unit);
}

TEST_F(HighLightTest, PrefetchPullsFollowOnSegments) {
  // Sequential prefetch policy: on a miss of tseg t, also fetch t+1.
  hl_->Internals().service.SetPrefetchPolicy([this](uint32_t tseg) {
    std::vector<uint32_t> extra;
    if (hl_->Internals().tseg_table.size() > tseg + 1 &&
        !(hl_->Internals().tseg_table.Get(tseg + 1).flags & kSegClean)) {
      extra.push_back(tseg + 1);
    }
    return extra;
  });
  MakeFile("/seq", 1 << 20, 21);  // Spans ~4 tertiary segments.
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/seq"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  ExpectFileContents("/seq", 1 << 20, 21);
  EXPECT_GT(hl_->Internals().service.stats().prefetches, 0u);
  // Prefetching cut the number of demand faults below the segment count.
  EXPECT_LT(hl_->Internals().block_map.stats().demand_faults, 4u);
}

TEST_F(HighLightTest, MigrationStreamsTargetDifferentVolumes) {
  // Section 6.5: direct several migration streams at different media. Two
  // "streams" (calls with different preferred volumes) place their segments
  // on their own volumes.
  MakeFile("/stream-a", 512 * 1024, 31);
  MakeFile("/stream-b", 512 * 1024, 32);
  Result<uint32_t> a = hl_->fs().LookupPath("/stream-a");
  Result<uint32_t> b = hl_->fs().LookupPath("/stream-b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MigratorOptions to_vol1;
  to_vol1.preferred_volume = 1;
  MigratorOptions to_vol2;
  to_vol2.preferred_volume = 2;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*a}, to_vol1).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*b}, to_vol2).ok());

  auto volumes_of = [&](uint32_t ino) {
    std::set<uint32_t> volumes;
    Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
    EXPECT_TRUE(refs.ok());
    for (const BlockRef& r : *refs) {
      if (hl_->Internals().address_map.Classify(r.daddr) ==
          AddressMap::Zone::kTertiary) {
        volumes.insert(hl_->Internals().address_map.VolumeOfTseg(
            hl_->Internals().address_map.TsegOf(r.daddr)));
      }
    }
    return volumes;
  };
  EXPECT_EQ(volumes_of(*a), std::set<uint32_t>{1});
  EXPECT_EQ(volumes_of(*b), std::set<uint32_t>{2});
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/stream-a", 512 * 1024, 31);
  ExpectFileContents("/stream-b", 512 * 1024, 32);
}

TEST_F(HighLightTest, DeadZoneAccessRejected) {
  std::vector<uint8_t> buf(kBlockSize);
  uint32_t dead = hl_->Internals().address_map.disk_blocks() + 100;
  EXPECT_EQ(hl_->Internals().block_map.ReadBlocks(dead, 1, buf).code(),
            ErrorCode::kDeadZone);
  EXPECT_EQ(hl_->Internals().block_map.WriteBlocks(dead, 1, buf).code(),
            ErrorCode::kDeadZone);
}

TEST_F(HighLightTest, TsegTableTracksLiveBytes) {
  MakeFile("/tracked", 512 * 1024, 22);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/tracked"}).ok());
  uint64_t live = hl_->Internals().tseg_table.TotalLiveBytes();
  EXPECT_GE(live, 512u * 1024);        // Data blocks.
  EXPECT_LT(live, 700u * 1024);        // Plus bounded metadata.
  ASSERT_TRUE(hl_->fs().Unlink("/tracked").ok());
  EXPECT_LT(hl_->Internals().tseg_table.TotalLiveBytes(), 4096u);
}

// The unified request API: one Migrate() dispatching on the request's mode.
TEST_F(HighLightTest, MigrationRequestPolicyRestrictedToSubtree) {
  ASSERT_TRUE(hl_->fs().Mkdir("/proj").ok());
  MakeFile("/proj/inside", 256 * 1024, 30);
  MakeFile("/outside", 256 * 1024, 31);
  clock_.Advance(100 * kUsPerSec);

  StpPolicy stp;
  MigrationRequest request;
  request.path = "/proj";
  request.policy = &stp;
  Result<MigrationReport> report = hl_->Migrate(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->files_migrated, 1u);

  Result<uint32_t> inside = hl_->fs().LookupPath("/proj/inside");
  Result<uint32_t> outside = hl_->fs().LookupPath("/outside");
  ASSERT_TRUE(inside.ok());
  ASSERT_TRUE(outside.ok());
  EXPECT_TRUE(FullyMigrated(*inside));
  EXPECT_FALSE(FullyMigrated(*outside))
      << "policy migration must honor the request's path filter";
  ExpectFileContents("/proj/inside", 256 * 1024, 30);
}

TEST_F(HighLightTest, MigrationRequestRejectsPolicyPlusColdCutoff) {
  StpPolicy stp;
  MigrationRequest request;
  request.policy = &stp;
  request.cold_cutoff = clock_.Now();
  Result<MigrationReport> report = hl_->Migrate(request);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(HighLightTest, MigrationRequestWrappersAgree) {
  MakeFile("/w", 256 * 1024, 32);
  // The deprecated wrapper and the request form produce the same effect.
  MigrationRequest request;
  request.path = "/w";
  Result<MigrationReport> report = hl_->Migrate(request);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->files_migrated, 1u);
  Result<uint32_t> ino = hl_->fs().LookupPath("/w");
  ASSERT_TRUE(ino.ok());
  EXPECT_TRUE(FullyMigrated(*ino));
}

}  // namespace
}  // namespace hl
