// Seeded randomized fault sweep: with probabilistic transient faults, load
// timeouts, and on-the-fly read corruption active on every tertiary
// channel, repeated write/migrate/read/clean cycles must never lose data —
// retries, failover, and quarantine absorb the faults, and once injection
// is disabled every byte reads back and fsck is clean. Fixed seeds keep the
// sweep deterministic.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class FaultSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.fault_seed = GetParam();
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  // Suspect/quarantined states accumulated under heavy injection would
  // eventually starve the allocator; an operator reinstate between rounds
  // models the repair crew.
  void ReinstateAll() {
    for (uint32_t v = 0; v < hl_->Internals().address_map.num_volumes(); ++v) {
      hl_->Internals().health.ReinstateVolume(v);
    }
  }

  // Bounded retry around an operation that may exhaust even the I/O
  // server's own retry budget under the sweep's fault rates.
  template <typename Fn>
  Status Eventually(Fn&& fn, int attempts = 50) {
    Status s = OkStatus();
    for (int i = 0; i < attempts; ++i) {
      s = fn();
      if (s.ok()) {
        return s;
      }
      ReinstateAll();
    }
    return s;
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_P(FaultSweepTest, NoDataLossUnderRandomTertiaryFaults) {
  // Tertiary-only fault profiles: the disk channels stay clean (LFS disk
  // writes have no retry layer — that path is exercised separately) and no
  // persistent latent errors are planted, so every injected fault is
  // recoverable by retry or failover.
  FaultProfile flaky;
  flaky.read_transient_p = 0.05;
  flaky.write_transient_p = 0.05;
  flaky.load_timeout_p = 0.05;
  ASSERT_GT(hl_->Internals().faults.SetProfile("jukebox.*", flaky), 0);
  FaultProfile media;
  media.read_transient_p = 0.02;
  media.read_corrupt_p = 0.01;  // Transient bit flips, caught by CRC.
  ASSERT_GT(hl_->Internals().faults.SetProfile("volume.*", media), 0);

  std::map<std::string, std::vector<uint8_t>> expect;
  MigratorOptions opts;
  opts.replicas = 1;
  for (int round = 0; round < 3; ++round) {
    for (int f = 0; f < 2; ++f) {
      const std::string path =
          "/r" + std::to_string(round) + "f" + std::to_string(f);
      auto data =
          Pattern(192 * 1024, GetParam() ^ (round * 16 + f));
      Result<uint32_t> ino = hl_->fs().Create(path);
      ASSERT_TRUE(ino.ok());
      ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
      expect[path] = std::move(data);

      // Migration may fail mid-copy-out; the staged ledger holds the
      // segments until a later flush lands them.
      Status migrated = Eventually([&] {
        Result<MigrationReport> r = hl_->Internals().migrator.MigrateFiles({*ino}, opts);
        return r.ok() ? hl_->Internals().migrator.FlushStaging() : r.status();
      });
      ASSERT_TRUE(migrated.ok()) << migrated.ToString();
    }

    // Faulty readback mid-sweep: retries and replica failover keep every
    // file readable even while the devices misbehave.
    ASSERT_TRUE(Eventually([&] { return hl_->DropCleanCacheLines(); }).ok());
    for (const auto& [path, data] : expect) {
      Result<StatInfo> st = hl_->fs().StatPath(path);
      ASSERT_TRUE(st.ok());
      std::vector<uint8_t> out(data.size());
      Status read = Eventually([&] {
        return hl_->fs().Read(st->ino, 0, out).status();
      });
      ASSERT_TRUE(read.ok()) << path << ": " << read.ToString();
      ASSERT_EQ(out, data) << path;
    }
    ReinstateAll();
  }

  // The sweep must actually have injected something, or it proves nothing.
  const FaultInjector::Stats& fs = hl_->Internals().faults.stats();
  EXPECT_GT(fs.transients + fs.load_timeouts + fs.corruptions, 0u);

  // Injection off: every byte reads back clean on the first try.
  FaultProfile quiet;
  ASSERT_GT(hl_->Internals().faults.SetProfile("*", quiet), 0);
  ReinstateAll();
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  for (const auto& [path, data] : expect) {
    Result<StatInfo> st = hl_->fs().StatPath(path);
    ASSERT_TRUE(st.ok());
    std::vector<uint8_t> out(data.size());
    Result<size_t> n = hl_->fs().Read(st->ino, 0, out);
    ASSERT_TRUE(n.ok()) << path << ": " << n.status().ToString();
    ASSERT_EQ(out, data) << path;
  }

  // A final scrub pass finds nothing unrecoverable, and the image is sound.
  Result<Scrubber::Report> scrubbed = hl_->Internals().scrubber.ScrubAll();
  ASSERT_TRUE(scrubbed.ok()) << scrubbed.status().ToString();
  EXPECT_EQ(scrubbed->unrecoverable, 0u);
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  FsckReport report = CheckFs(hl_->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);
}

TEST_P(FaultSweepTest, SweepIsDeterministic) {
  // Two systems built from the same seed inject the same faults at the
  // same points: identical stats and identical simulated end time.
  auto run = [](uint64_t seed, uint64_t* transients, SimTime* end) {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.fault_seed = seed;
    SimClock clock;
    auto made = HighLightFs::Create(config, &clock);
    ASSERT_TRUE(made.ok());
    std::unique_ptr<HighLightFs> hl = std::move(*made);
    FaultProfile flaky;
    flaky.read_transient_p = 0.1;
    flaky.write_transient_p = 0.1;
    ASSERT_GT(hl->Internals().faults.SetProfile("jukebox.*", flaky), 0);

    Result<uint32_t> ino = hl->fs().Create("/f");
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(hl->fs().Write(*ino, 0, Pattern(256 * 1024, 9)).ok());
    for (int i = 0; i < 20; ++i) {
      (void)hl->Migrate(MigrationRequest{.path = "/f"});
      (void)hl->Internals().migrator.FlushStaging();
      (void)hl->DropCleanCacheLines();
      std::vector<uint8_t> out(256 * 1024);
      (void)hl->fs().Read(*ino, 0, out);
    }
    *transients = hl->Internals().faults.stats().transients;
    *end = clock.Now();
  };

  uint64_t t1 = 0, t2 = 0;
  SimTime e1 = 0, e2 = 0;
  run(GetParam(), &t1, &e1);
  run(GetParam(), &t2, &e2);
  EXPECT_GT(t1, 0u);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(e1, e2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweepTest,
                         ::testing::Values(0x5EED0001ull, 0x5EED0002ull));

}  // namespace
}  // namespace hl
