// Unit tests for HighLight's address map, tseg table, and segment cache.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "highlight/address_map.h"
#include "highlight/segment_cache.h"
#include "highlight/tseg_table.h"
#include "lfs/lfs.h"

namespace hl {
namespace {

// 100 tertiary segments, 10 per volume, 256-block segments.
class AddressMapTest : public ::testing::Test {
 protected:
  AddressMap amap_{/*disk_blocks=*/100000, /*spb=*/256,
                   /*tertiary_nsegs=*/100, /*segs_per_volume=*/10};
};

TEST_F(AddressMapTest, ZoneClassification) {
  EXPECT_EQ(amap_.Classify(0), AddressMap::Zone::kDisk);
  EXPECT_EQ(amap_.Classify(99999), AddressMap::Zone::kDisk);
  EXPECT_EQ(amap_.Classify(100000), AddressMap::Zone::kDead);
  EXPECT_EQ(amap_.Classify(amap_.tertiary_base() - 1),
            AddressMap::Zone::kDead);
  EXPECT_EQ(amap_.Classify(amap_.tertiary_base()),
            AddressMap::Zone::kTertiary);
  EXPECT_EQ(amap_.Classify(kNoBlock - 1), AddressMap::Zone::kTertiary);
}

TEST_F(AddressMapTest, TertiaryRangeEndsAtSentinel) {
  // The last tertiary block is kNoBlock - 1: one address is sacrificed.
  EXPECT_EQ(amap_.tertiary_base() + 100u * 256u, kNoBlock);
}

TEST_F(AddressMapTest, TsegRoundTrip) {
  for (uint32_t tseg : {0u, 1u, 57u, 99u}) {
    uint32_t base = amap_.TsegBase(tseg);
    EXPECT_EQ(amap_.TsegOf(base), tseg);
    EXPECT_EQ(amap_.TsegOf(base + 255), tseg);
    EXPECT_EQ(amap_.OffsetInTseg(base + 100), 100u);
  }
}

TEST_F(AddressMapTest, VolumeZeroAtTopOfAddressSpace) {
  // Figure 4: volume 0's end is the largest block number; volume 1 sits
  // just below it.
  EXPECT_EQ(amap_.num_volumes(), 10u);
  EXPECT_EQ(amap_.VolumeOfTseg(99), 0u);
  EXPECT_EQ(amap_.VolumeOfTseg(90), 0u);
  EXPECT_EQ(amap_.VolumeOfTseg(89), 1u);
  EXPECT_EQ(amap_.VolumeOfTseg(0), 9u);
  EXPECT_EQ(amap_.FirstTsegOfVolume(0), 90u);
  EXPECT_EQ(amap_.FirstTsegOfVolume(9), 0u);
}

TEST_F(AddressMapTest, MediaAddressedWithIncreasingBlockNumbers) {
  // Within a volume, later slots sit at higher addresses and higher byte
  // offsets on the medium.
  uint32_t first = amap_.FirstTsegOfVolume(3);
  EXPECT_EQ(amap_.SlotInVolume(first), 0u);
  EXPECT_EQ(amap_.SlotInVolume(first + 9), 9u);
  EXPECT_EQ(amap_.ByteOffsetOnVolume(first), 0u);
  EXPECT_EQ(amap_.ByteOffsetOnVolume(first + 1), 256u * kBlockSize);
}

class CacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", 16 * 1024, Rz57Profile(),
                                      &clock_);
    LfsParams params;
    params.seg_size_blocks = 64;
    params.cache_max_segments = 4;
    params.tertiary_nsegs = 100;
    params.segs_per_volume = 10;
    params.num_volumes = 10;
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(CacheFixture, AllocLookupEject) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache.Init().ok());
  EXPECT_EQ(cache.Capacity(), 4u);
  EXPECT_EQ(cache.Lookup(7), kNoSegment);

  Result<uint32_t> line = cache.AllocLine(7, /*staging=*/false);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(cache.Lookup(7), *line);
  // The ifile mirrors the tag.
  EXPECT_EQ(fs_->GetSegUsage(*line).cache_tseg, 7u);
  EXPECT_TRUE(fs_->GetSegUsage(*line).flags & kSegCached);

  ASSERT_TRUE(cache.Eject(7).ok());
  EXPECT_EQ(cache.Lookup(7), kNoSegment);
  EXPECT_EQ(fs_->GetSegUsage(*line).cache_tseg, kNoSegment);
}

TEST_F(CacheFixture, DuplicateAllocRejected) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.AllocLine(7, false).ok());
  EXPECT_EQ(cache.AllocLine(7, false).status().code(), ErrorCode::kExists);
}

TEST_F(CacheFixture, LruEvictionPicksColdestLine) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache.Init().ok());
  for (uint32_t t = 0; t < 4; ++t) {
    clock_.Advance(1000);
    ASSERT_TRUE(cache.AllocLine(t, false).ok());
  }
  // Touch 0 so 1 becomes the LRU.
  clock_.Advance(1000);
  cache.Touch(0);
  clock_.Advance(1000);
  ASSERT_TRUE(cache.AllocLine(99, false).ok());
  EXPECT_EQ(cache.Lookup(1), kNoSegment) << "LRU line should be evicted";
  EXPECT_NE(cache.Lookup(0), kNoSegment);
  EXPECT_EQ(cache.Snapshot().evictions, 1u);
}

TEST_F(CacheFixture, StagingLinesArePinned) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache.Init().ok());
  for (uint32_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(cache.AllocLine(t, /*staging=*/true).ok());
  }
  // All four lines hold sole copies: nothing can be evicted or ejected.
  EXPECT_EQ(cache.AllocLine(99, false).status().code(), ErrorCode::kBusy);
  EXPECT_EQ(cache.Eject(0).code(), ErrorCode::kBusy);
  // Copy-out unpins.
  ASSERT_TRUE(cache.MarkCopiedOut(0).ok());
  EXPECT_TRUE(cache.Eject(0).ok());
}

TEST_F(CacheFixture, LeastWorthyPolicyEvictsUntouchedNewcomersFirst) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLeastWorthyFirstTouch);
  ASSERT_TRUE(cache.Init().ok());
  for (uint32_t t = 0; t < 4; ++t) {
    clock_.Advance(1000);
    ASSERT_TRUE(cache.AllocLine(t, false).ok());
  }
  // Promote 0 and 1 by touching them twice; 2 and 3 stay "newcomers".
  for (int round = 0; round < 2; ++round) {
    clock_.Advance(1000);
    cache.Touch(0);
    cache.Touch(1);
  }
  clock_.Advance(1000);
  cache.Touch(2);  // Still only 1 touch beyond fetch... now 1 touch total.
  ASSERT_TRUE(cache.AllocLine(50, false).ok());
  // Victim must be 2 or 3 (newcomers), not the promoted 0/1.
  EXPECT_NE(cache.Lookup(0), kNoSegment);
  EXPECT_NE(cache.Lookup(1), kNoSegment);
}

TEST_F(CacheFixture, RetagMovesLineToNewTseg) {
  SegmentCache cache(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache.Init().ok());
  Result<uint32_t> line = cache.AllocLine(5, /*staging=*/true);
  ASSERT_TRUE(line.ok());
  ASSERT_TRUE(cache.Retag(5, 17).ok());
  EXPECT_EQ(cache.Lookup(5), kNoSegment);
  EXPECT_EQ(cache.Lookup(17), *line);
  EXPECT_EQ(fs_->GetSegUsage(*line).cache_tseg, 17u);
}

TEST_F(CacheFixture, DirectoryRebuiltFromIfileTags) {
  {
    SegmentCache cache(fs_.get(), CacheReplacement::kLru);
    ASSERT_TRUE(cache.Init().ok());
    ASSERT_TRUE(cache.AllocLine(33, false).ok());
  }
  // A fresh cache instance (as after remount) discovers the line.
  SegmentCache cache2(fs_.get(), CacheReplacement::kLru);
  ASSERT_TRUE(cache2.Init().ok());
  EXPECT_NE(cache2.Lookup(33), kNoSegment);
  EXPECT_EQ(cache2.Used(), 1u);
}

TEST_F(CacheFixture, TsegTableLoadsStoresAndAccounts) {
  AddressMap amap(fs_->superblock().disk_blocks, 64, 100, 10);
  TsegTable table(fs_.get(), &amap);
  ASSERT_TRUE(table.Load().ok());
  EXPECT_EQ(table.size(), 100u);
  EXPECT_TRUE(table.Get(0).flags & kSegClean);

  // Accounting via a tertiary address.
  uint32_t daddr = amap.TsegBase(42) + 3;
  table.OnAccounting(daddr, 8192);
  EXPECT_EQ(table.Get(42).live_bytes, 8192u);
  table.OnAccounting(daddr, -100000);  // Clamped at zero.
  EXPECT_EQ(table.Get(42).live_bytes, 0u);

  table.SetFlags(42, kSegDirty, kSegClean);
  ASSERT_TRUE(table.Store().ok());

  TsegTable reloaded(fs_.get(), &amap);
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_TRUE(reloaded.Get(42).flags & kSegDirty);
  EXPECT_FALSE(reloaded.Get(42).flags & kSegClean);
}

TEST_F(CacheFixture, NextFreshTsegConsumesVolumeZeroFirst) {
  AddressMap amap(fs_->superblock().disk_blocks, 64, 100, 10);
  TsegTable table(fs_.get(), &amap);
  ASSERT_TRUE(table.Load().ok());
  // Volume 0 owns tsegs [90, 100); allocation starts there.
  EXPECT_EQ(table.NextFreshTseg({}), 90u);
  table.SetFlags(90, kSegDirty, kSegClean);
  EXPECT_EQ(table.NextFreshTseg({}), 91u);
  // Skipping volume 0 moves to volume 1's first segment.
  EXPECT_EQ(table.NextFreshTseg({0}), 80u);
}

}  // namespace
}  // namespace hl
