// Tests for section 5.2 access-range tracking and the cold-range migration
// it enables.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "lfs/access_ranges.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

// --- Tracker unit tests --------------------------------------------------------

TEST(AccessRangeTrackerTest, SequentialReadsCoalesceToOneRecord) {
  AccessRangeTracker tracker;
  // A file read sequentially and completely: one record, as the paper
  // promises.
  for (uint32_t lbn = 0; lbn < 100; lbn += 10) {
    tracker.RecordRead(7, lbn, 10, 1000 + lbn);
  }
  std::vector<AccessRange> ranges = tracker.Ranges(7);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].start_lbn, 0u);
  EXPECT_EQ(ranges[0].end_lbn, 100u);
  EXPECT_EQ(ranges[0].last_access, 1090u);  // Most recent touch wins.
}

TEST(AccessRangeTrackerTest, ScatteredReadsKeepSeparateRecords) {
  AccessRangeTracker tracker;
  tracker.RecordRead(7, 0, 4, 100);
  tracker.RecordRead(7, 100, 4, 200);
  tracker.RecordRead(7, 500, 4, 300);
  EXPECT_EQ(tracker.RecordCount(7), 3u);
}

TEST(AccessRangeTrackerTest, OverlapMergesAndRefreshes) {
  AccessRangeTracker tracker;
  tracker.RecordRead(7, 10, 10, 100);
  tracker.RecordRead(7, 15, 10, 999);  // Overlaps [10,20).
  std::vector<AccessRange> ranges = tracker.Ranges(7);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].start_lbn, 10u);
  EXPECT_EQ(ranges[0].end_lbn, 25u);
  EXPECT_EQ(ranges[0].last_access, 999u);
}

TEST(AccessRangeTrackerTest, CapCoarsensGranularity) {
  AccessRangeTracker tracker(/*max_records_per_file=*/4);
  // 8 scattered single-block reads exceed the cap: the closest pairs merge,
  // trading precision for space (the paper's dynamic granularity).
  for (uint32_t i = 0; i < 8; ++i) {
    tracker.RecordRead(7, i * 100, 1, 50 + i);
  }
  EXPECT_LE(tracker.RecordCount(7), 4u);
  // Every accessed block is still covered (coarsely).
  std::vector<uint32_t> cold = tracker.ColdBlocks(7, 800, /*cutoff=*/0);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::count(cold.begin(), cold.end(), i * 100), 0)
        << "accessed block " << i * 100 << " reported cold";
  }
}

TEST(AccessRangeTrackerTest, ColdBlocksRespectCutoff) {
  AccessRangeTracker tracker;
  tracker.RecordRead(7, 0, 10, /*now=*/100);    // Old access.
  tracker.RecordRead(7, 20, 10, /*now=*/5000);  // Recent access.
  std::vector<uint32_t> cold = tracker.ColdBlocks(7, 40, /*cutoff=*/1000);
  // Blocks 0..9 are cold (accessed before the cutoff), 20..29 warm,
  // 10..19 and 30..39 never accessed -> cold.
  EXPECT_NE(std::find(cold.begin(), cold.end(), 5u), cold.end());
  EXPECT_EQ(std::find(cold.begin(), cold.end(), 25u), cold.end());
  EXPECT_NE(std::find(cold.begin(), cold.end(), 15u), cold.end());
  EXPECT_NE(std::find(cold.begin(), cold.end(), 35u), cold.end());
}

TEST(AccessRangeTrackerTest, ForgetDropsFile) {
  AccessRangeTracker tracker;
  tracker.RecordRead(7, 0, 10, 100);
  tracker.Forget(7);
  EXPECT_EQ(tracker.RecordCount(7), 0u);
  EXPECT_EQ(tracker.TrackedFiles(), 0u);
}

// --- End-to-end cold-range migration ----------------------------------------------

class ColdRangeMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.migrator.migrate_inode = false;
    config.migrator.migrate_metadata = false;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(ColdRangeMigrationTest, HotTailStaysOnDiskColdPrefixMigrates) {
  // A DB-style file: 2 MB; only its last 32 pages are queried.
  Result<uint32_t> ino = hl_->fs().Create("/rel");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(2 << 20, 1);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->fs().Sync().ok());

  clock_.Advance(10 * kUsPerSec);
  SimTime cutoff = clock_.Now();
  clock_.Advance(10 * kUsPerSec);
  // Query the hot tail after the cutoff.
  std::vector<uint8_t> page(4096);
  for (uint32_t p = 512 - 32; p < 512; ++p) {
    ASSERT_TRUE(
        hl_->fs().Read(*ino, static_cast<uint64_t>(p) * 4096, page).ok());
  }

  Result<MigrationReport> report = hl_->Migrate(MigrationRequest{.cold_cutoff = cutoff});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->blocks_migrated, 512u - 32u);

  // Verify the split: hot tail on disk, prefix on tertiary.
  Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(*ino);
  ASSERT_TRUE(refs.ok());
  for (const BlockRef& r : *refs) {
    if (IsMetaLbn(r.lbn)) {
      continue;
    }
    AddressMap::Zone zone = hl_->Internals().address_map.Classify(r.daddr);
    if (r.lbn >= 512 - 32) {
      EXPECT_EQ(zone, AddressMap::Zone::kDisk) << "hot lbn " << r.lbn;
    } else {
      EXPECT_EQ(zone, AddressMap::Zone::kTertiary) << "cold lbn " << r.lbn;
    }
  }
  // Contents intact.
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ColdRangeMigrationTest, RecentlyModifiedFilesAreSkipped) {
  // A cutoff chosen before the file is written marks it unstable.
  SimTime cutoff = clock_.Now();
  Result<uint32_t> ino = hl_->fs().Create("/busy");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 2)).ok());
  Result<MigrationReport> report = hl_->Migrate(MigrationRequest{.cold_cutoff = cutoff});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->blocks_migrated, 0u);
}

TEST_F(ColdRangeMigrationTest, SequentiallyReadFileCostsOneRecord) {
  Result<uint32_t> ino = hl_->fs().Create("/seq");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(1 << 20, 3)).ok());
  ASSERT_TRUE(hl_->fs().Sync().ok());
  // Read through an 8 KB buffer, start to finish.
  std::vector<uint8_t> buf(8192);
  for (uint64_t off = 0; off < (1 << 20); off += buf.size()) {
    ASSERT_TRUE(hl_->fs().Read(*ino, off, buf).ok());
  }
  EXPECT_EQ(hl_->Internals().access_tracker.RecordCount(*ino), 1u);
}

}  // namespace
}  // namespace hl
