// Directory-focused stress tests: large directories spanning many blocks,
// slot reuse, name limits, deep nesting, and rename semantics.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "lfs/lfs.h"
#include "util/rng.h"

namespace hl {
namespace {

class LfsDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", 16 * 1024, Rz57Profile(),
                                      &clock_);
    LfsParams params;
    params.seg_size_blocks = 64;
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(LfsDirTest, LargeDirectorySpansManyBlocks) {
  ASSERT_TRUE(fs_->Mkdir("/big").ok());
  // 64 entries per 4 KB block; 500 entries span 8+ blocks.
  for (int i = 0; i < 500; ++i) {
    Result<uint32_t> ino = fs_->Create("/big/entry" + std::to_string(i));
    ASSERT_TRUE(ino.ok()) << i;
  }
  Result<std::vector<DirEntry>> entries =
      fs_->ReadDir(*fs_->LookupPath("/big"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 502u);  // ".", "..", 500 files.
  // Every entry resolves.
  for (int i = 0; i < 500; i += 37) {
    EXPECT_TRUE(fs_->LookupPath("/big/entry" + std::to_string(i)).ok());
  }
  Result<StatInfo> st = fs_->StatPath("/big");
  ASSERT_TRUE(st.ok());
  // 502 entries x 64 B = 32128 B: the directory spans 8 data blocks.
  EXPECT_EQ(st->size, 502u * kDirEntrySize);
  EXPECT_GT(st->size, 7u * kBlockSize);
}

TEST_F(LfsDirTest, FreedSlotsAreReused) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs_->Create("/d/f" + std::to_string(i)).ok());
  }
  uint64_t size_before = fs_->StatPath("/d")->size;
  // Delete and recreate: the directory must not grow.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs_->Unlink("/d/f" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs_->Create("/d/g" + std::to_string(i)).ok());
  }
  EXPECT_EQ(fs_->StatPath("/d")->size, size_before);
}

TEST_F(LfsDirTest, NameLengthLimits) {
  std::string max_name(kMaxNameLen, 'x');
  EXPECT_TRUE(fs_->Create("/" + max_name).ok());
  EXPECT_TRUE(fs_->LookupPath("/" + max_name).ok());
  std::string too_long(kMaxNameLen + 1, 'y');
  EXPECT_EQ(fs_->Create("/" + too_long).status().code(),
            ErrorCode::kNameTooLong);
}

TEST_F(LfsDirTest, DeepNesting) {
  std::string path;
  for (int depth = 0; depth < 24; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs_->Mkdir(path).ok()) << path;
  }
  Result<uint32_t> leaf = fs_->Create(path + "/leaf");
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  EXPECT_TRUE(fs_->LookupPath(path + "/leaf").ok());
  // Walk back up via "..".
  Result<std::vector<DirEntry>> entries =
      fs_->ReadDir(*fs_->LookupPath(path));
  ASSERT_TRUE(entries.ok());
  bool has_dotdot = false;
  for (const DirEntry& e : *entries) {
    if (e.name == "..") {
      has_dotdot = true;
    }
  }
  EXPECT_TRUE(has_dotdot);
}

TEST_F(LfsDirTest, RenameReplacesExistingFile) {
  Result<uint32_t> a = fs_->Create("/a");
  Result<uint32_t> b = fs_->Create("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<uint8_t> data(100, 0x11);
  ASSERT_TRUE(fs_->Write(*a, 0, data).ok());
  ASSERT_TRUE(fs_->Rename("/a", "/b").ok());
  EXPECT_FALSE(fs_->LookupPath("/a").ok());
  Result<uint32_t> now_b = fs_->LookupPath("/b");
  ASSERT_TRUE(now_b.ok());
  EXPECT_EQ(*now_b, *a);
  // The old /b inode was freed.
  EXPECT_FALSE(fs_->Stat(*b).ok());
}

TEST_F(LfsDirTest, RenameDirectoryUpdatesDotDot) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mkdir("/dst").ok());
  ASSERT_TRUE(fs_->Mkdir("/src/child").ok());
  ASSERT_TRUE(fs_->Create("/src/child/file").ok());
  ASSERT_TRUE(fs_->Rename("/src/child", "/dst/child").ok());
  EXPECT_TRUE(fs_->LookupPath("/dst/child/file").ok());
  EXPECT_FALSE(fs_->LookupPath("/src/child").ok());
  // ".." of the moved directory points at the new parent.
  Result<uint32_t> child = fs_->LookupPath("/dst/child");
  Result<uint32_t> dst = fs_->LookupPath("/dst");
  ASSERT_TRUE(child.ok());
  Result<std::vector<DirEntry>> entries = fs_->ReadDir(*child);
  ASSERT_TRUE(entries.ok());
  for (const DirEntry& e : *entries) {
    if (e.name == "..") {
      EXPECT_EQ(e.ino, *dst);
    }
  }
  // Parent link counts updated.
  EXPECT_EQ(fs_->Stat(*dst)->nlink, 3);
  EXPECT_EQ(fs_->Stat(*fs_->LookupPath("/src"))->nlink, 2);
}

TEST_F(LfsDirTest, RenameIntoMissingDirectoryFails) {
  ASSERT_TRUE(fs_->Create("/a").ok());
  EXPECT_FALSE(fs_->Rename("/a", "/missing/b").ok());
  EXPECT_TRUE(fs_->LookupPath("/a").ok());  // Source untouched.
}

TEST_F(LfsDirTest, PathResolutionThroughFileFails) {
  ASSERT_TRUE(fs_->Create("/plainfile").ok());
  EXPECT_EQ(fs_->Create("/plainfile/below").status().code(),
            ErrorCode::kNotADirectory);
  EXPECT_EQ(fs_->LookupPath("/plainfile/below").status().code(),
            ErrorCode::kNotADirectory);
}

TEST_F(LfsDirTest, LargeDirectorySurvivesRemount) {
  ASSERT_TRUE(fs_->Mkdir("/big").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs_->Create("/big/f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();
  LfsParams params;
  params.seg_size_blocks = 64;
  auto fs = Lfs::Mount(disk_.get(), &clock_, params);
  ASSERT_TRUE(fs.ok());
  Result<std::vector<DirEntry>> entries =
      (*fs)->ReadDir(*(*fs)->LookupPath("/big"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 202u);
}

}  // namespace
}  // namespace hl
