// Property tests for the full HighLight stack: randomized workloads of
// writes, migrations (whole-file and block-range), cache ejections, tertiary
// cleaning and remounts, checked against a reference model, swept over cache
// sizes and replacement policies.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

using Model = std::map<std::string, std::vector<uint8_t>>;

class HighLightFuzzTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, CacheReplacement, uint64_t>> {
 protected:
  uint32_t CacheSegments() const { return std::get<0>(GetParam()); }
  CacheReplacement Replacement() const { return std::get<1>(GetParam()); }
  uint64_t Seed() const { return std::get<2>(GetParam()); }
};

TEST_P(HighLightFuzzTest, RandomHierarchyOpsMatchModel) {
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 16 * 1024});  // 64 MB.
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = 6;
  j.volume_capacity_bytes = 24ull * 64 * kBlockSize;
  config.jukeboxes.push_back({j, false, 24});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = CacheSegments();
  config.cache_replacement = Replacement();
  auto hl_or = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(hl_or.ok()) << hl_or.status().ToString();
  std::unique_ptr<HighLightFs> hl = std::move(*hl_or);

  Model model;
  Rng rng(Seed());
  int next_file = 0;

  auto random_existing = [&]() -> std::string {
    if (model.empty()) {
      return "";
    }
    auto it = model.begin();
    std::advance(it, rng.Below(model.size()));
    return it->first;
  };
  auto verify = [&](const std::string& path) {
    const auto& ref = model[path];
    Result<uint32_t> ino = hl->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok()) << path;
    std::vector<uint8_t> out(ref.size());
    Result<size_t> n = hl->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << path << ": " << n.status().ToString();
    ASSERT_EQ(*n, ref.size());
    ASSERT_EQ(out, ref) << path << " contents diverged";
  };

  const int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    switch (rng.Below(12)) {
      case 0:
      case 1: {  // Create + write.
        std::string path = "/h" + std::to_string(next_file++);
        Result<uint32_t> ino = hl->fs().Create(path);
        ASSERT_TRUE(ino.ok());
        size_t len = 4096 + rng.Below(512 * 1024);
        std::vector<uint8_t> data(len);
        for (auto& b : data) {
          b = static_cast<uint8_t>(rng.Next());
        }
        ASSERT_TRUE(hl->fs().Write(*ino, 0, data).ok());
        model[path] = std::move(data);
        break;
      }
      case 2:
      case 3: {  // Overwrite an extent (possibly of a migrated file).
        std::string path = random_existing();
        if (path.empty()) {
          break;
        }
        auto& ref = model[path];
        uint64_t off = rng.Below(ref.size());
        size_t len = 1 + rng.Below(32 * 1024);
        std::vector<uint8_t> data(len);
        for (auto& b : data) {
          b = static_cast<uint8_t>(rng.Next());
        }
        Result<uint32_t> ino = hl->fs().LookupPath(path);
        ASSERT_TRUE(ino.ok());
        ASSERT_TRUE(hl->fs().Write(*ino, off, data).ok());
        if (ref.size() < off + len) {
          ref.resize(off + len, 0);
        }
        std::copy(data.begin(), data.end(), ref.begin() + off);
        break;
      }
      case 4:
      case 5: {  // Read-verify a whole file.
        std::string path = random_existing();
        if (!path.empty()) {
          verify(path);
        }
        break;
      }
      case 6: {  // Whole-file migration.
        std::string path = random_existing();
        if (path.empty()) {
          break;
        }
        Result<MigrationReport> r = hl->Migrate(MigrationRequest{.path = path});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 7: {  // Block-range migration of a cold prefix.
        std::string path = random_existing();
        if (path.empty()) {
          break;
        }
        Result<uint32_t> ino = hl->fs().LookupPath(path);
        ASSERT_TRUE(ino.ok());
        uint32_t nblocks = static_cast<uint32_t>(
            (model[path].size() + kBlockSize - 1) / kBlockSize);
        if (nblocks < 2) {
          break;
        }
        std::vector<uint32_t> lbns;
        for (uint32_t l = 0; l < nblocks / 2; ++l) {
          lbns.push_back(l);
        }
        MigratorOptions opts;
        ASSERT_TRUE(hl->Internals().migrator.MigrateBlocks(*ino, lbns, opts).ok());
        break;
      }
      case 8: {  // Eject clean cache lines + flush buffer cache.
        ASSERT_TRUE(hl->DropCleanCacheLines().ok());
        break;
      }
      case 9: {  // Unlink.
        std::string path = random_existing();
        if (path.empty()) {
          break;
        }
        ASSERT_TRUE(hl->fs().Unlink(path).ok());
        model.erase(path);
        break;
      }
      case 10: {  // Checkpoint + remount (crash consistency).
        ASSERT_TRUE(hl->fs().Checkpoint().ok());
        ASSERT_TRUE(hl->Remount().ok());
        break;
      }
      case 11: {  // Clock jump (ages files for policies).
        clock.Advance(3600 * kUsPerSec);
        break;
      }
    }
  }

  // Full final verification, including after a cache drop and remount.
  for (const auto& [path, ref] : model) {
    verify(path);
  }
  ASSERT_TRUE(hl->fs().Checkpoint().ok());
  ASSERT_TRUE(hl->Remount().ok());
  ASSERT_TRUE(hl->DropCleanCacheLines().ok());
  for (const auto& [path, ref] : model) {
    verify(path);
  }
  FsckReport report = CheckFs(hl->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);

  // Cache invariants: directory entries are unique and mirror the ifile.
  std::set<uint32_t> tsegs;
  for (const SegmentCache::LineInfo& line : hl->Internals().cache.Lines()) {
    EXPECT_TRUE(tsegs.insert(line.tseg).second) << "duplicate cache tag";
    const SegUsage& u = hl->fs().GetSegUsage(line.disk_seg);
    EXPECT_TRUE(u.flags & kSegCached);
    EXPECT_EQ(u.cache_tseg, line.tseg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CacheConfigSweep, HighLightFuzzTest,
    ::testing::Combine(
        ::testing::Values(6u, 12u, 24u),
        ::testing::Values(CacheReplacement::kLru, CacheReplacement::kRandom,
                          CacheReplacement::kLeastWorthyFirstTouch),
        ::testing::Values(0xCAFE01ull)));

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, HighLightFuzzTest,
    ::testing::Values(
        std::make_tuple(10u, CacheReplacement::kLru, 0xCAFE02ull),
        std::make_tuple(10u, CacheReplacement::kLru, 0xCAFE03ull),
        std::make_tuple(10u, CacheReplacement::kLru, 0xCAFE04ull)));

}  // namespace
}  // namespace hl
