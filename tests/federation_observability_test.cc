// Federation observability tests: causal trace propagation across the
// stager / shard / WAN / replicator boundaries, and the ObservabilityHub's
// SLO watcher. The contract under test is that one demand fetch — even one
// that coalesces waiters or fails over to a dead site's peer — renders as a
// single connected span tree, and that SLO breach/clear transitions land in
// the hub trace ring at bit-exact sim times.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/site_replicator.h"
#include "federation/stager.h"
#include "highlight/highlight.h"
#include "util/crc32.h"
#include "util/observability_hub.h"
#include "util/rng.h"
#include "util/span.h"
#include "util/trace.h"
#include "util/wan_link.h"

namespace hl {
namespace {

const SpanRecord* FindByName(const SpanTracer::CompletedView& spans,
                             const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const SpanRecord*> AllNamed(const SpanTracer::CompletedView& spans,
                                        const std::string& name) {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& s : spans) {
    if (s.name == name) {
      out.push_back(&s);
    }
  }
  return out;
}

bool HasArg(const SpanRecord& s, const std::string& key,
            const std::string& value) {
  for (const auto& [k, v] : s.args) {
    if (k == key && v == value) {
      return true;
    }
  }
  return false;
}

// Minimal in-memory SiteStore for replicator-only propagation tests.
class FakeSiteStore : public SiteStore {
 public:
  explicit FakeSiteStore(uint64_t seg_bytes) : seg_bytes_(seg_bytes) {}

  void AddSegment(uint32_t tseg, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint8_t> image(seg_bytes_);
    for (auto& b : image) {
      b = static_cast<uint8_t>(rng.Next());
    }
    crcs_[tseg] = Crc32(image);
    images_[tseg] = std::move(image);
  }

  uint64_t SegmentImageBytes() const override { return seg_bytes_; }
  std::vector<uint32_t> ReplicableSegments() const override {
    std::vector<uint32_t> out;
    for (const auto& [tseg, image] : images_) {
      out.push_back(tseg);
    }
    return out;
  }
  Result<std::vector<uint8_t>> ReadSegmentImage(uint32_t tseg) override {
    auto it = images_.find(tseg);
    if (it == images_.end()) {
      return NotFound("fake site: no segment");
    }
    return it->second;
  }
  Status InstallSegmentImage(uint32_t tseg,
                             std::span<const uint8_t> image) override {
    images_[tseg].assign(image.begin(), image.end());
    crcs_[tseg] = Crc32(image);
    return OkStatus();
  }
  bool SegmentCrc(uint32_t tseg, uint32_t* crc) const override {
    auto it = crcs_.find(tseg);
    if (it == crcs_.end()) {
      return false;
    }
    *crc = it->second;
    return true;
  }
  void StampSegmentCrc(uint32_t tseg, uint32_t crc) override {
    crcs_[tseg] = crc;
  }
  Status PersistBlob(const std::string& name,
                     std::span<const uint8_t> data) override {
    blobs_[name].assign(data.begin(), data.end());
    return OkStatus();
  }
  Result<std::vector<uint8_t>> LoadBlob(const std::string& name) override {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) {
      return NotFound("fake site: no blob");
    }
    return it->second;
  }

 private:
  uint64_t seg_bytes_;
  std::map<uint32_t, std::vector<uint8_t>> images_;
  std::map<uint32_t, uint32_t> crcs_;
  std::map<std::string, std::vector<uint8_t>> blobs_;
};

constexpr uint64_t kSegBytes = 4096;

// A complete HighLight deployment tracing into `shared_spans` through a
// `track_prefix` view, with `nfiles` one-segment files migrated to tertiary
// (the same deterministic-construction contract the replication tests use).
std::unique_ptr<HighLightFs> BuildSite(SimClock* clock, uint32_t nfiles,
                                       SpanTracer* shared_spans,
                                       const std::string& track_prefix) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = 4;
  j.volume_capacity_bytes = 20ull * 64 * kBlockSize;
  Result<HighLightConfig> config =
      HighLightConfig::Builder()
          .AddDisk(Rz57Profile(), 16 * 1024)
          .AddJukebox(j, false, 20)
          .SegSizeBlocks(64)
          .CacheMaxSegments(8)
          .AsyncReadPipeline(true)
          .TimeseriesCadence(0)
          .SharedSpans(shared_spans, track_prefix)
          .Build();
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  auto hl = HighLightFs::Create(*config, clock);
  EXPECT_TRUE(hl.ok()) << hl.status().ToString();

  Rng rng(0x517E);
  MigratorOptions data_only;
  data_only.migrate_inode = false;
  data_only.migrate_metadata = false;
  std::vector<uint32_t> inos;
  for (uint32_t i = 0; i < nfiles; ++i) {
    Result<uint32_t> ino = (*hl)->fs().Create("/f" + std::to_string(i));
    EXPECT_TRUE(ino.ok());
    std::vector<uint8_t> payload(200 * 1024);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_TRUE((*hl)->fs().Write(*ino, 0, payload).ok());
    inos.push_back(*ino);
  }
  EXPECT_TRUE((*hl)->fs().Sync().ok());
  EXPECT_TRUE((*hl)->Internals().migrator.MigrateFiles(inos, data_only).ok());
  EXPECT_TRUE((*hl)->DropCleanCacheLines().ok());
  return std::move(*hl);
}

// --- Stager boundary ------------------------------------------------------

TEST(StagerTracePropagationTest, CoalescedFanoutSharesOneDispatchParent) {
  SimClock clock;
  SpanTracer spans(&clock, 4096);
  auto site = BuildSite(&clock, 4, &spans, "site.");
  ASSERT_NE(site, nullptr);

  StagerScheduler stager(&clock);
  int shard = stager.AddShard(site.get());
  stager.SetSpans(&spans);

  std::vector<uint32_t> pool = site->FetchableSegments();
  ASSERT_FALSE(pool.empty());
  spans.Clear();

  // Two tenants fault the same segment: one coalesced in-flight recall.
  ASSERT_TRUE(stager.SubmitFetch("alice", shard, pool[0]).ok());
  ASSERT_TRUE(stager.SubmitFetch("bob", shard, pool[0]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(stager.Metrics().Value("stager.coalesced"), 1u);

  const auto& done = spans.Completed();
  // One dispatch served the coalesced batch; BOTH waiters got a fan-out
  // leaf under that same dispatch span.
  auto fanouts = AllNamed(done, "stager_fanout");
  ASSERT_EQ(fanouts.size(), 2u);
  EXPECT_EQ(fanouts[0]->parent, fanouts[1]->parent);
  const SpanRecord* dispatch = FindByName(done, "stager_dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(fanouts[0]->parent, dispatch->id);
  EXPECT_TRUE(HasArg(*fanouts[0], "tenant", "alice") ||
              HasArg(*fanouts[1], "tenant", "alice"));

  // The dispatch is causally rooted at the batch's first admission...
  const SpanRecord* admit = FindByName(done, "stager_admit");
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(dispatch->parent, admit->id);
  EXPECT_EQ(admit->parent, kNoSpan);

  // ...and the shard's own service spans nested under the dispatch through
  // the shared implicit-context stack — with the view's track prefix.
  const SpanRecord* batch = FindByName(done, "fetch_batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->parent, dispatch->id);
  EXPECT_EQ(batch->track, "site.service");

  EXPECT_TRUE(spans.quiescent());
}

// --- Replicator / WAN boundary --------------------------------------------

TEST(SiteReplicatorTracePropagationTest, FetchVerifiedImageLinksWanChild) {
  SimClock clock;
  SpanTracer spans(&clock, 256);
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  a.AddSegment(7, 42);
  b.AddSegment(7, 42);  // Same seed: same bytes, same CRC.

  SiteReplicator repl(&clock);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  WanLink link("a-b", &clock);
  link.SetSpans(&spans);
  repl.SetLink(sa, sb, &link);
  repl.SetSpans(&spans);

  Result<std::vector<uint8_t>> image = repl.FetchVerifiedImage(sa, 7);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  (void)sb;

  const auto& done = spans.Completed();
  const SpanRecord* fetch = FindByName(done, "site_fetch_image");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->parent, kNoSpan);
  EXPECT_TRUE(HasArg(*fetch, "peer", "b"));
  // The remote-repair WAN hop is a child of the fetch, on the link's lane.
  const SpanRecord* xfer = FindByName(done, "wan_transfer");
  ASSERT_NE(xfer, nullptr);
  EXPECT_EQ(xfer->parent, fetch->id);
  EXPECT_EQ(xfer->track, "wan.a-b");

  EXPECT_TRUE(spans.quiescent());
}

TEST(SiteReplicatorTracePropagationTest, AntiEntropyRoundParentsItsShips) {
  SimClock clock;
  SpanTracer spans(&clock, 256);
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  for (uint32_t t = 0; t < 3; ++t) {
    a.AddSegment(t, 100 + t);
  }

  SiteReplicator repl(&clock);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  WanLink link("a-b", &clock);
  link.SetSpans(&spans);
  repl.SetLink(sa, sb, &link);
  repl.SetSpans(&spans);

  Result<SiteReplicator::AntiEntropyStats> round =
      repl.AntiEntropyRound(sa, sb);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->shipped, 3u);

  const auto& done = spans.Completed();
  const SpanRecord* parent = FindByName(done, "antientropy_round");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->parent, kNoSpan);
  EXPECT_TRUE(HasArg(*parent, "shipped", "3"));

  // Every per-segment ship is a child of the round, and every ship carries
  // its own WAN transfer child (the catalog-compare transfers hang off the
  // round directly).
  auto ships = AllNamed(done, "site_ship");
  ASSERT_EQ(ships.size(), 3u);
  for (const SpanRecord* ship : ships) {
    EXPECT_EQ(ship->parent, parent->id);
    bool has_wan_child = false;
    for (const SpanRecord& s : done) {
      if (s.name == "wan_transfer" && s.parent == ship->id) {
        has_wan_child = true;
      }
    }
    EXPECT_TRUE(has_wan_child);
  }
  for (const SpanRecord& s : done) {
    if (s.name != "wan_transfer") {
      continue;
    }
    bool under_round = s.parent == parent->id;
    bool under_ship = false;
    for (const SpanRecord* ship : ships) {
      under_ship = under_ship || s.parent == ship->id;
    }
    EXPECT_TRUE(under_round || under_ship);
  }

  EXPECT_TRUE(spans.quiescent());
}

// --- Cross-site failover: one connected tree ------------------------------

TEST(FederationObservabilityTest, CrossSiteFailoverIsOneConnectedTree) {
  SimClock clock;
  ObservabilityHub hub(&clock);
  auto site_a = BuildSite(&clock, 6, &hub.spans(), "siteA.");
  auto site_b = BuildSite(&clock, 6, &hub.spans(), "siteB.");
  ASSERT_NE(site_a, nullptr);
  ASSERT_NE(site_b, nullptr);
  ASSERT_EQ(site_a->FetchableSegments(), site_b->FetchableSegments());

  WanLink link("a-b", &clock);
  link.SetSpans(&hub.spans());
  SiteReplicator repl(&clock);
  int ra = repl.AddSite("a", site_a.get());
  int rb = repl.AddSite("b", site_b.get());
  repl.SetLink(ra, rb, &link);
  repl.SetSpans(&hub.spans());

  StagerScheduler stager(&clock);
  int p = stager.AddShard(site_a.get());
  int q = stager.AddShard(site_b.get());
  stager.SetShardSite(p, ra);
  stager.SetShardSite(q, rb);
  stager.SetFailoverPeer(p, q);
  stager.SetFailoverPeer(q, p);
  stager.SetSiteHealthProvider(&repl);
  stager.SetSpans(&hub.spans());
  hub.Register("siteA", &site_a->metrics(), nullptr, nullptr, nullptr);
  hub.Register("siteB", &site_b->metrics(), nullptr, nullptr, nullptr);
  hub.InstallTickHook();

  std::vector<uint32_t> pool = site_a->FetchableSegments();
  ASSERT_FALSE(pool.empty());
  hub.spans().Clear();

  // One demand fetch against a dead home site: served by the peer.
  repl.SetSiteQuarantined(ra, true);
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[0]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(site_b->Metrics().Value("service.demand_fetches"), 1u);
  EXPECT_GE(stager.Metrics().Value("stager.failover_fetches"), 1u);

  const auto& done = hub.spans().Completed();
  ASSERT_FALSE(done.empty());

  // Exactly one root — the stager admission — and every other span chains
  // up to it: one causal tree from admission to peer install.
  std::map<SpanId, const SpanRecord*> by_id;
  for (const SpanRecord& s : done) {
    by_id[s.id] = &s;
  }
  size_t roots = 0;
  for (const SpanRecord& s : done) {
    if (s.parent == kNoSpan) {
      ++roots;
      EXPECT_EQ(s.name, "stager_admit");
    } else {
      EXPECT_TRUE(by_id.count(s.parent)) << s.name << " is orphaned";
    }
  }
  EXPECT_EQ(roots, 1u);

  // The fan-out leaf is marked as a failover, and the peer site's service /
  // install spans sit inside the tree on their prefixed lanes.
  auto fanouts = AllNamed(done, "stager_fanout");
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_TRUE(HasArg(*fanouts[0], "failover", "1"));
  const SpanRecord* batch = FindByName(done, "fetch_batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->track, "siteB.service");
  const SpanRecord* install = FindByName(done, "install");
  ASSERT_NE(install, nullptr);
  EXPECT_EQ(install->track, "siteB.io");

  // The operator view of the same story: RenderSpanForest shows the whole
  // failover as one indented tree.
  const std::string forest = RenderSpanForest(done);
  EXPECT_NE(forest.find("stager_admit"), std::string::npos);
  EXPECT_NE(forest.find("stager_dispatch"), std::string::npos);
  EXPECT_NE(forest.find("fetch_batch"), std::string::npos);
  EXPECT_NE(forest.find("siteB.service"), std::string::npos);
  EXPECT_NE(forest.find("install"), std::string::npos);

  // End-of-run leak check: the shared implicit-context stack unwound.
  EXPECT_TRUE(hub.spans().quiescent());
}

// --- SLO watcher -----------------------------------------------------------

TEST(ObservabilityHubTest, SloBreachAndClearFireAtExactSimTimes) {
  SimClock clock;
  ObservabilityHub hub(&clock);  // Default cadence: one sample per sim-second.
  int64_t depth = 0;
  hub.AddSeries("q", [&] { return depth; });
  const size_t idx = hub.AddSlo(
      SloRule{.name = "q", .series = "q", .threshold = 10});
  hub.InstallTickHook();

  // Crossing the 1 s cadence boundary samples q=20 > 10: the breach event
  // is stamped at the exact sim time of the crossing tick, not the boundary.
  depth = 20;
  clock.Advance(1'234'567);
  EXPECT_TRUE(hub.SloInBreach(idx));

  // Recovery below threshold at the next boundary clears it.
  depth = 4;
  clock.Advance(999'999);  // now = 2'234'566, crosses the 2 s boundary.
  EXPECT_FALSE(hub.SloInBreach(idx));

  // One jump over five boundaries takes ONE sample (the sampler contract),
  // so exactly one more breach fires, again at the tick's exact time.
  depth = 99;
  clock.Advance(5 * kUsPerSec);
  EXPECT_TRUE(hub.SloInBreach(idx));

  std::vector<TraceRecord> slo_events;
  for (const TraceRecord& r : hub.trace().Recent(hub.trace().capacity())) {
    if (r.event == TraceEvent::kSloBreach || r.event == TraceEvent::kSloClear) {
      slo_events.push_back(r);
    }
  }
  ASSERT_EQ(slo_events.size(), 3u);
  EXPECT_EQ(slo_events[0].event, TraceEvent::kSloBreach);
  EXPECT_EQ(slo_events[0].time, 1'234'567u);
  EXPECT_EQ(slo_events[0].a, idx);
  EXPECT_EQ(slo_events[0].b, 20u);
  EXPECT_EQ(slo_events[1].event, TraceEvent::kSloClear);
  EXPECT_EQ(slo_events[1].time, 2'234'566u);
  EXPECT_EQ(slo_events[1].b, 4u);
  EXPECT_EQ(slo_events[2].event, TraceEvent::kSloBreach);
  EXPECT_EQ(slo_events[2].time, 7'234'566u);
  EXPECT_EQ(slo_events[2].b, 99u);

  // Breach time accrues one cadence interval per in-breach sample: two
  // breach samples so far.
  MetricsSnapshot snap = hub.metrics().Snapshot();
  EXPECT_EQ(snap.Value("slo.q.breaches"), 2u);
  EXPECT_EQ(snap.Value("slo.q.breach_us"), 2u * kUsPerSec);
  EXPECT_EQ(snap.Value("slo.q.breach_seconds"), 2u);

  // And the merged snapshot namespaces deployment rows without touching the
  // hub's own slo.* rows.
  MetricsRegistry shard;
  Counter fetches;
  fetches.BindTo(shard, "service.demand_fetches");
  fetches++;
  hub.Register("shard0", &shard, nullptr, nullptr, nullptr);
  MetricsSnapshot merged = hub.MergedSnapshot();
  EXPECT_EQ(merged.Value("slo.q.breaches"), 2u);
  EXPECT_EQ(merged.Value("shard0.service.demand_fetches"), 1u);
}

}  // namespace
}  // namespace hl
