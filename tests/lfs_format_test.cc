// Round-trip and validation tests for the on-media structures (Table 1 and
// friends), plus the SegmentBuilder.

#include <gtest/gtest.h>

#include "lfs/format.h"
#include "lfs/segment_builder.h"

namespace hl {
namespace {

TEST(DInodeFormatTest, RoundTrip) {
  DInode in;
  in.ino = 42;
  in.type = FileType::kRegular;
  in.nlink = 3;
  in.size = 123456789;
  in.atime = 111;
  in.mtime = 222;
  in.ctime = 333;
  in.version = 7;
  in.blocks = 55;
  in.direct[0] = 1000;
  in.direct[11] = 1011;
  in.indirect = 2000;
  in.dindirect = 3000;

  std::vector<uint8_t> buf(kInodeSize);
  in.Serialize(buf);
  Result<DInode> out = DInode::Deserialize(buf);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ino, 42u);
  EXPECT_EQ(out->type, FileType::kRegular);
  EXPECT_EQ(out->size, 123456789u);
  EXPECT_EQ(out->direct[0], 1000u);
  EXPECT_EQ(out->direct[11], 1011u);
  EXPECT_EQ(out->indirect, 2000u);
  EXPECT_EQ(out->dindirect, 3000u);
  EXPECT_EQ(out->version, 7u);
}

TEST(DInodeFormatTest, ThirtyTwoPerBlock) {
  EXPECT_EQ(kInodesPerBlock, 32u);
}

TEST(SegSummaryFormatTest, RoundTripWithChecksum) {
  SegSummary s;
  s.next = 17;
  s.create = 99;
  s.serial = 12345;
  s.flags = kSsFlagCheckpoint;
  s.finfos.push_back(FInfo{5, 1, {0, 1, 2, kLbnSingleIndirect}});
  s.finfos.push_back(FInfo{9, 3, {7}});
  s.inode_daddrs = {400, 401};
  s.datasum = 0xABCD;

  std::vector<uint8_t> block(kBlockSize);
  ASSERT_TRUE(s.SerializeToBlock(block).ok());
  Result<SegSummary> out = SegSummary::DeserializeFromBlock(block);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->next, 17u);
  EXPECT_EQ(out->serial, 12345u);
  EXPECT_EQ(out->flags, kSsFlagCheckpoint);
  ASSERT_EQ(out->finfos.size(), 2u);
  EXPECT_EQ(out->finfos[0].ino, 5u);
  EXPECT_EQ(out->finfos[0].lbns.size(), 4u);
  EXPECT_EQ(out->finfos[0].lbns[3], kLbnSingleIndirect);
  EXPECT_EQ(out->inode_daddrs, (std::vector<uint32_t>{400, 401}));
  EXPECT_EQ(out->TotalDataBlocks(), 5u);
}

TEST(SegSummaryFormatTest, CorruptionDetected) {
  SegSummary s;
  s.finfos.push_back(FInfo{5, 1, {0}});
  std::vector<uint8_t> block(kBlockSize);
  ASSERT_TRUE(s.SerializeToBlock(block).ok());
  block[100] ^= 0x40;
  EXPECT_EQ(SegSummary::DeserializeFromBlock(block).status().code(),
            ErrorCode::kCorruption);
}

TEST(SegSummaryFormatTest, GarbageBlockRejected) {
  std::vector<uint8_t> block(kBlockSize, 0xC3);
  EXPECT_FALSE(SegSummary::DeserializeFromBlock(block).ok());
}

TEST(SegSummaryFormatTest, EncodedSizeMatchesTable1Rates) {
  // Table 1: 12 bytes per distinct file plus 4 per file block.
  SegSummary s;
  size_t base = s.EncodedSize();
  s.finfos.push_back(FInfo{1, 0, {}});
  EXPECT_EQ(s.EncodedSize(), base + 12);
  s.finfos[0].lbns.push_back(0);
  EXPECT_EQ(s.EncodedSize(), base + 16);
  s.inode_daddrs.push_back(7);
  EXPECT_EQ(s.EncodedSize(), base + 20);
}

TEST(SegUsageFormatTest, RoundTrip) {
  SegUsage u;
  u.live_bytes = 777;
  u.flags = kSegDirty | kSegCached;
  u.avail_bytes = 1 << 20;
  u.cache_tseg = 55;
  u.write_time = 999999;
  std::vector<uint8_t> buf(SegUsage::kEncodedSize);
  u.Serialize(buf);
  SegUsage out = SegUsage::Deserialize(buf);
  EXPECT_EQ(out.live_bytes, 777u);
  EXPECT_EQ(out.flags, kSegDirty | kSegCached);
  EXPECT_EQ(out.cache_tseg, 55u);
  EXPECT_EQ(out.write_time, 999999u);
}

TEST(InodeMapFormatTest, PaperQuotes341EntriesPerBlock) {
  EXPECT_EQ(kInodeMapPerBlock, 341u);
}

TEST(SuperblockFormatTest, RoundTripAndAddressHelpers) {
  Superblock sb;
  sb.disk_blocks = 100000;
  sb.nsegs = 390;
  sb.seg_size_blocks = 256;
  sb.reserved_blocks = 16;
  sb.tertiary_nsegs = 1000;
  sb.tertiary_base = kNoBlock - 1000u * 256;
  sb.segs_per_volume = 40;
  sb.num_volumes = 25;
  std::vector<uint8_t> block(kBlockSize);
  sb.Serialize(block);
  Result<Superblock> out = Superblock::Deserialize(block);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->nsegs, 390u);
  EXPECT_EQ(out->tertiary_base, sb.tertiary_base);

  EXPECT_TRUE(out->IsDiskAddr(0));
  EXPECT_TRUE(out->IsDiskAddr(99999));
  EXPECT_FALSE(out->IsDiskAddr(100000));
  EXPECT_FALSE(out->IsTertiaryAddr(100000));  // Dead zone.
  EXPECT_TRUE(out->IsTertiaryAddr(sb.tertiary_base));
  EXPECT_TRUE(out->IsTertiaryAddr(kNoBlock - 1));
  EXPECT_EQ(out->TertiarySegOf(sb.tertiary_base + 256 * 3 + 5), 3u);
  EXPECT_EQ(out->SegFirstBlock(2), 16u + 512);
  EXPECT_EQ(out->BlockToSeg(16 + 512 + 100), 2u);
}

TEST(SuperblockFormatTest, BadMagicRejected) {
  std::vector<uint8_t> block(kBlockSize, 0);
  EXPECT_FALSE(Superblock::Deserialize(block).ok());
}

TEST(CheckpointFormatTest, RoundTripAndTornDetection) {
  CheckpointRegion cp;
  cp.serial = 9;
  cp.ifile_inode_daddr = 1234;
  cp.cur_seg = 3;
  cp.cur_offset = 77;
  cp.next_seg = 4;
  cp.pseg_serial = 555;
  std::vector<uint8_t> block(kBlockSize);
  cp.Serialize(block);
  Result<CheckpointRegion> out = CheckpointRegion::Deserialize(block);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->serial, 9u);
  EXPECT_EQ(out->cur_offset, 77u);
  EXPECT_EQ(out->pseg_serial, 555u);
  block[8] ^= 1;  // Torn write.
  EXPECT_EQ(CheckpointRegion::Deserialize(block).status().code(),
            ErrorCode::kCorruption);
}

TEST(DirEntryFormatTest, RoundTrip) {
  DirEntry e{42, "satellite-image.dat"};
  std::vector<uint8_t> buf(kDirEntrySize);
  e.Serialize(buf);
  DirEntry out = DirEntry::Deserialize(buf);
  EXPECT_EQ(out.ino, 42u);
  EXPECT_EQ(out.name, "satellite-image.dat");
}

// --- SegmentBuilder ----------------------------------------------------------

TEST(SegmentBuilderTest, BuildsSelfDescribingPartial) {
  SegmentBuilder b(1000, 256, /*next_seg=*/7, /*create=*/1, /*serial=*/3);
  std::vector<uint8_t> blk(kBlockSize, 0x5A);
  Result<uint32_t> a0 = b.AddBlock(5, 1, 0, blk);
  Result<uint32_t> a1 = b.AddBlock(5, 1, 1, blk);
  ASSERT_TRUE(a0.ok());
  EXPECT_EQ(*a0, 1001u);
  EXPECT_EQ(*a1, 1002u);
  DInode inode;
  inode.ino = 5;
  ASSERT_TRUE(b.AddInode(inode).ok());
  Result<SegmentBuilder::Image> img = b.Finish();
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->num_blocks, 4u);  // Summary + 2 data + 1 inode block.
  ASSERT_EQ(img->inodes.size(), 1u);
  EXPECT_EQ(img->inodes[0].daddr, 1003u);

  // The image must parse back as a valid partial segment.
  Result<SegSummary> sum = SegSummary::DeserializeFromBlock(
      std::span<const uint8_t>(img->bytes.data(), kBlockSize));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->serial, 3u);
  EXPECT_EQ(sum->next, 7u);
  EXPECT_EQ(sum->TotalDataBlocks(), 2u);
  EXPECT_EQ(sum->inode_daddrs.size(), 1u);
}

TEST(SegmentBuilderTest, RespectsBlockBudget) {
  SegmentBuilder b(0, 3, kNoSegment, 0, 0);  // Summary + 2 blocks max.
  std::vector<uint8_t> blk(kBlockSize, 1);
  EXPECT_TRUE(b.AddBlock(1, 0, 0, blk).ok());
  EXPECT_TRUE(b.CanAddBlock(1));
  EXPECT_TRUE(b.AddBlock(1, 0, 1, blk).ok());
  EXPECT_FALSE(b.CanAddBlock(1));
  EXPECT_EQ(b.AddBlock(1, 0, 2, blk).status().code(), ErrorCode::kNoSpace);
}

TEST(SegmentBuilderTest, InodesPackIntoBlocks) {
  SegmentBuilder b(0, 256, kNoSegment, 0, 0);
  DInode inode;
  for (uint32_t i = 0; i < kInodesPerBlock + 1; ++i) {
    inode.ino = 100 + i;
    ASSERT_TRUE(b.AddInode(inode).ok());
  }
  Result<SegmentBuilder::Image> img = b.Finish();
  ASSERT_TRUE(img.ok());
  // 33 inodes need two inode blocks.
  EXPECT_EQ(img->num_blocks, 3u);
  EXPECT_EQ(img->inodes[0].daddr, 1u);
  EXPECT_EQ(img->inodes[kInodesPerBlock].daddr, 2u);
}

TEST(SegmentBuilderTest, SummaryBlockLimitEnforced) {
  // Each distinct file costs 16 bytes of summary; with one block per file the
  // builder must stop before the 4 KB summary overflows, even though the
  // segment has room for more data blocks.
  SegmentBuilder b(0, 2000, kNoSegment, 0, 0);
  std::vector<uint8_t> blk(kBlockSize, 2);
  uint32_t added = 0;
  for (uint32_t ino = 1; ino <= 400; ++ino) {
    if (!b.CanAddBlock(ino)) {
      break;
    }
    ASSERT_TRUE(b.AddBlock(ino, 0, 0, blk).ok());
    ++added;
  }
  EXPECT_LT(added, 400u);   // The summary filled before 400 files fit.
  EXPECT_GT(added, 150u);   // But it held a healthy number.
}

}  // namespace
}  // namespace hl
