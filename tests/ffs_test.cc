// Tests for the FFS baseline: correctness, update-in-place semantics, and
// the clustering/timing behaviours the Table 2/3 comparisons depend on.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "ffs/ffs.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class FfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", 32 * 1024, Rz57Profile(),
                                      &clock_);
    auto fs = Ffs::Mkfs(disk_.get(), &clock_, FfsParams{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Ffs> fs_;
};

TEST_F(FfsTest, CreateWriteReadRoundTrip) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(100000, 1);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(FfsTest, DirectoriesWork) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  Result<uint32_t> ino = fs_->Create("/d/leaf");
  ASSERT_TRUE(ino.ok());
  Result<uint32_t> found = fs_->LookupPath("/d/leaf");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ino);
  EXPECT_FALSE(fs_->LookupPath("/d/none").ok());
}

TEST_F(FfsTest, UnlinkReleasesBlocks) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  uint64_t free0 = fs_->FreeBlocks();
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1 << 20, 2)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_LT(fs_->FreeBlocks(), free0);
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_GE(fs_->FreeBlocks() + 2, free0);  // Indirect blocks tracked too.
  EXPECT_FALSE(fs_->LookupPath("/f").ok());
}

TEST_F(FfsTest, UpdateInPlaceKeepsAddresses) {
  // The defining FFS behaviour vs LFS: overwrites do not move blocks. We
  // observe it via timing: random overwrites pay seeks every time.
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(4 << 20, 3)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_->FlushBufferCache();

  Rng rng(7);
  SimTime t0 = clock_.Now();
  for (int i = 0; i < 50; ++i) {
    uint64_t frame = rng.Below(1000);
    ASSERT_TRUE(fs_->Write(*ino, frame * 4096, Pattern(4096, 100 + i)).ok());
  }
  ASSERT_TRUE(fs_->Sync().ok());
  SimTime random_cost = clock_.Now() - t0;
  // 50 scattered in-place writes cost many seeks: >= 50 * ~10 ms.
  EXPECT_GT(random_cost, 400'000u);
}

TEST_F(FfsTest, SequentialAllocationIsContiguous) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1 << 20, 4)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_->FlushBufferCache();

  // A sequential re-read must run near raw speed thanks to clustering.
  std::vector<uint8_t> out(1 << 20);
  SimTime t0 = clock_.Now();
  ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
  double secs = static_cast<double>(clock_.Now() - t0) / kUsPerSec;
  double kbps = 1024.0 / secs;
  EXPECT_GT(kbps, 700.0) << "sequential read too slow: " << kbps << " KB/s";
}

TEST_F(FfsTest, WriteClusteringCoalesces) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  uint64_t writes_before = disk_->writes();
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(64 * 1024, 5)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  // 16 blocks coalesce into very few device writes (clusters + metadata).
  EXPECT_LE(disk_->writes() - writes_before, 4u);
}

TEST_F(FfsTest, PendingWritesVisibleToReads) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(8192, 6);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  // No sync: data sit in the write-behind cluster.
  std::vector<uint8_t> out(8192);
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(FfsTest, SparseReadsZeros) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 1 << 20, Pattern(100, 7)).ok());
  std::vector<uint8_t> out(4096, 0xFF);
  ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(FfsTest, LargeFileThroughIndirects) {
  Result<uint32_t> ino = fs_->Create("/big");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(6 << 20, 8);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_->FlushBufferCache();
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = fs_->Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace hl
