// Observability tests: causal span trees under injected faults, time-series
// sampler determinism, and percentile surfacing — the span/telemetry layer
// must describe the system faithfully without perturbing it.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "highlight/highlight.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/span.h"
#include "util/timeseries.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

const SpanRecord* FindByName(const SpanTracer::CompletedView& spans,
                             const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const SpanRecord*> ChildrenOf(
    const SpanTracer::CompletedView& spans, SpanId parent) {
  std::vector<const SpanRecord*> kids;
  for (const SpanRecord& s : spans) {
    if (s.parent == parent) {
      kids.push_back(&s);
    }
  }
  return kids;
}

// --- SpanTracer unit behavior -------------------------------------------

TEST(SpanTracerTest, NestingAndImplicitContext) {
  SimClock clock;
  SpanTracer tracer(&clock, 16);
  SpanId outer = tracer.Begin("outer", "t");
  clock.Advance(5);
  SpanId inner = tracer.Begin("inner", "t");  // Child of the stack top.
  clock.Advance(7);
  tracer.End(inner);
  tracer.End(outer);

  ASSERT_EQ(tracer.Completed().size(), 2u);
  const SpanRecord* in = FindByName(tracer.Completed(), "inner");
  const SpanRecord* out = FindByName(tracer.Completed(), "outer");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(in->parent, out->id);
  EXPECT_EQ(out->parent, kNoSpan);
  EXPECT_EQ(in->begin_us, 5u);
  EXPECT_EQ(in->end_us, 12u);
  EXPECT_EQ(out->duration_us(), 12u);
  EXPECT_EQ(tracer.open_count(), 0u);
}

TEST(SpanTracerTest, EndingParentUnwindsOpenDescendants) {
  SimClock clock;
  SpanTracer tracer(&clock, 16);
  SpanId outer = tracer.Begin("outer", "t");
  tracer.Begin("leaked", "t");  // An error path skips its End().
  clock.Advance(3);
  tracer.End(outer);

  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.current(), kNoSpan);
  const SpanRecord* leaked = FindByName(tracer.Completed(), "leaked");
  ASSERT_NE(leaked, nullptr);
  EXPECT_EQ(leaked->end_us, 3u);  // Closed with (and at the time of) outer.
}

TEST(SpanTracerTest, WindowIsBoundedButTotalIsLifetime) {
  SimClock clock;
  SpanTracer tracer(&clock, 4);
  for (int i = 0; i < 10; ++i) {
    tracer.End(tracer.Begin("s" + std::to_string(i), "t"));
  }
  EXPECT_EQ(tracer.Completed().size(), 4u);  // Oldest six dropped.
  EXPECT_EQ(tracer.total_spans(), 10u);
  EXPECT_EQ(tracer.Completed().front().name, "s6");
  EXPECT_EQ(tracer.Completed().back().name, "s9");
}

TEST(SpanTracerTest, AddCompleteIsAnnotatableAfterTheFact) {
  SimClock clock;
  SpanTracer tracer(&clock, 8);
  SpanId id = tracer.AddComplete("xfer", "dev", kNoSpan, 100, 250);
  tracer.Annotate(id, "bytes", "4096");
  ASSERT_EQ(tracer.Completed().size(), 1u);
  const SpanRecord& rec = tracer.Completed().front();
  EXPECT_EQ(rec.begin_us, 100u);
  EXPECT_EQ(rec.duration_us(), 150u);
  ASSERT_EQ(rec.args.size(), 1u);
  EXPECT_EQ(rec.args[0].first, "bytes");
  EXPECT_EQ(rec.args[0].second, "4096");
}

TEST(SpanTracerTest, NullTracerScopesAreFree) {
  SpanScope scope(nullptr, "nothing", "t");
  scope.Annotate("k", "v");  // Must not crash.
  EXPECT_EQ(scope.id(), kNoSpan);
  EXPECT_FALSE(static_cast<bool>(scope));
}

// Interned strings must survive ring recycling (records reference the
// intern table, not the slots they were first written to), the steady-state
// tracer must stop allocating, and serialization must round-trip
// byte-identically across identically driven tracers.
TEST(SpanTracerTest, InterningRoundTripSurvivesRingRecycling) {
  auto drive = [](SpanTracer& tracer, SimClock& clock) {
    for (int i = 0; i < 64; ++i) {
      SpanScope s(&tracer, (i % 3) == 0 ? "fetch" : "stage", "engine");
      s.Annotate("tseg", (i % 2) == 0 ? "7" : "9");
      s.Annotate("state", "copied");
      clock.Advance(3);
    }
  };
  SimClock clock;
  SpanTracer tracer(&clock, 8);  // 64 spans through an 8-slot ring.
  drive(tracer, clock);

  // Every surviving record reads back intact strings after 56 recycles.
  ASSERT_EQ(tracer.Completed().size(), 8u);
  for (const SpanRecord& rec : tracer.Completed()) {
    EXPECT_TRUE(rec.name == "fetch" || rec.name == "stage");
    EXPECT_EQ(rec.track, "engine");
    ASSERT_EQ(rec.args.size(), 2u);
    EXPECT_EQ(rec.args[0].first, "tseg");
    EXPECT_TRUE(rec.args[0].second == "7" || rec.args[0].second == "9");
    EXPECT_EQ(rec.args[1].first, "state");
    EXPECT_EQ(rec.args[1].second, "copied");
  }
  // Exactly the five repeated strings intern (annotation *values* are
  // owned per-record): fetch, stage, engine, tseg, state.
  EXPECT_EQ(tracer.interned_strings(), 5u);
  EXPECT_TRUE(tracer.quiescent());

  // Steady state: an identical second cycle may not grow the record window
  // or the intern table — the zero-allocation claim.
  const size_t window = tracer.window_bytes();
  drive(tracer, clock);
  EXPECT_EQ(tracer.window_bytes(), window);
  EXPECT_EQ(tracer.interned_strings(), 5u);

  // Round trip: an identically driven tracer serializes byte-identically,
  // both the native JSON and the Perfetto export.
  SimClock clock2;
  SpanTracer tracer2(&clock2, 8);
  drive(tracer2, clock2);
  drive(tracer2, clock2);
  EXPECT_EQ(tracer.ToJson(64), tracer2.ToJson(64));
  std::string ev1;
  std::string ev2;
  AppendPerfettoSpanEvents(tracer, 1, "engine", &ev1);
  AppendPerfettoSpanEvents(tracer2, 1, "engine", &ev2);
  EXPECT_EQ(ev1, ev2);
  EXPECT_EQ(PerfettoTraceJson(ev1), PerfettoTraceJson(ev2));
}

// --- Span trees under injected faults -----------------------------------

class ObservabilityFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  // End-of-run span-context leak check: a missed SpanScope unwind leaves
  // the implicit-context stack non-empty and would silently mis-parent
  // every span the next operation opens.
  void TearDown() override {
    if (hl_ != nullptr) {
      EXPECT_TRUE(hl_->spans().quiescent())
          << hl_->spans().open_count() << " spans still open";
    }
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(ObservabilityFsTest, RetriesNestUnderFetchInOneDemandTree) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 7);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // Two transient drive faults: retried through within one demand fetch.
  hl_->Internals().jukebox(0).FailNextOps(2);
  hl_->spans().Clear();
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());

  const auto& spans = hl_->spans().Completed();
  const SpanRecord* demand = FindByName(spans, "demand_fetch");
  const SpanRecord* fetch = FindByName(spans, "fetch");
  const SpanRecord* install = FindByName(spans, "install");
  ASSERT_NE(demand, nullptr);
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(install, nullptr);
  EXPECT_EQ(demand->parent, kNoSpan);
  EXPECT_EQ(fetch->parent, demand->id);
  EXPECT_EQ(install->parent, fetch->id);

  size_t retries = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "retry") {
      EXPECT_EQ(s.parent, fetch->id);  // Children of the fetch, not roots.
      EXPECT_GT(s.duration_us(), 0u);  // Backoff + re-attempt take time.
      ++retries;
    }
  }
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(hl_->spans().open_count(), 0u);
}

TEST_F(ObservabilityFsTest, CrcFailoverShowsAsChildOfFetch) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 13);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());

  // Find the tertiary segment holding block 0 and corrupt the copy the I/O
  // server will try first (a copy on a mounted volume beats a media swap).
  auto refs = hl_->fs().CollectFileBlocks(*ino);
  ASSERT_TRUE(refs.ok());
  uint32_t primary = kNoSegment;
  for (const BlockRef& r : *refs) {
    if (r.lbn == 0 && r.daddr != kNoBlock) {
      primary = hl_->Internals().address_map.TsegOf(r.daddr);
      break;
    }
  }
  ASSERT_NE(primary, kNoSegment);
  std::vector<uint32_t> candidates = {primary};
  for (uint32_t replica : hl_->Internals().tseg_table.ReplicasOf(primary)) {
    candidates.push_back(replica);
  }
  uint32_t victim = candidates.front();
  for (uint32_t candidate : candidates) {
    auto mounted = hl_->Internals().footprint.VolumeMounted(
        static_cast<int>(hl_->Internals().address_map.VolumeOfTseg(candidate)));
    if (mounted.ok() && *mounted) {
      victim = candidate;
      break;
    }
  }
  uint32_t vol = hl_->Internals().address_map.VolumeOfTseg(victim);
  auto medium = hl_->Internals().footprint.GetVolume(vol);
  ASSERT_TRUE(medium.ok());
  std::vector<uint8_t> junk(kBlockSize, 0xA5);
  ASSERT_TRUE(
      (*medium)
          ->Write(hl_->Internals().address_map.ByteOffsetOnVolume(victim), junk)
          .ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  hl_->spans().Clear();
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));

  const auto& spans = hl_->spans().Completed();
  const SpanRecord* fetch = FindByName(spans, "fetch");
  const SpanRecord* failover = FindByName(spans, "failover");
  const SpanRecord* install = FindByName(spans, "install");
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(failover, nullptr);
  ASSERT_NE(install, nullptr);
  EXPECT_EQ(failover->parent, fetch->id);
  EXPECT_EQ(install->parent, fetch->id);
  // The CRC mismatch burned the per-source retry budget before failing over.
  const SpanRecord* retry = FindByName(spans, "retry");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->parent, fetch->id);
  // One tree: everything descends from the lone demand_fetch root.
  const SpanRecord* demand = FindByName(spans, "demand_fetch");
  ASSERT_NE(demand, nullptr);
  EXPECT_EQ(fetch->parent, demand->id);
  size_t roots = 0;
  for (const SpanRecord& s : spans) {
    if (s.parent == kNoSpan) {
      ++roots;
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST_F(ObservabilityFsTest, WriteBehindIssueSpansInheritEnqueueContext) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 21)).ok());
  ASSERT_TRUE(hl_->fs().Sync().ok());

  hl_->spans().Clear();
  MigratorOptions opts;
  opts.write_behind = true;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());

  const auto& spans = hl_->spans().Completed();
  const SpanRecord* issue = FindByName(spans, "issue_copyout");
  ASSERT_NE(issue, nullptr);
  // The issue-time span is parented to the migration context captured at
  // enqueue time, not to whatever was open when the queue drained.
  ASSERT_NE(issue->parent, kNoSpan);
  std::vector<const SpanRecord*> writes;
  for (const SpanRecord& s : spans) {
    if (s.name == "tertiary_write") {
      writes.push_back(&s);
    }
  }
  ASSERT_FALSE(writes.empty());
  for (const SpanRecord* w : writes) {
    const SpanRecord* parent = nullptr;
    for (const SpanRecord& s : spans) {
      if (s.id == w->parent) {
        parent = &s;
        break;
      }
    }
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(parent->name == "issue_copyout" ||
                parent->name == "issue_replica_write");
  }
}

// --- Time-series sampler -------------------------------------------------

TEST(TimeSeriesSamplerTest, StampsAtCadenceBoundariesRegardlessOfChunking) {
  SimClock clock;
  TimeSeriesSampler sampler(/*cadence_us=*/kUsPerSec, /*capacity=*/16);
  int64_t level = 0;
  sampler.AddSeries("level", [&] { return level; });
  const SimClock::TickHookId hook =
      clock.AddTickHook([&](SimTime now) { sampler.Poll(now); });

  level = 1;
  clock.Advance(700'000);  // 0.7 s: no boundary crossed yet.
  EXPECT_EQ(sampler.Series("level").size(), 0u);
  level = 2;
  clock.Advance(600'000);  // 1.3 s: crossed the 1 s boundary.
  ASSERT_EQ(sampler.Series("level").size(), 1u);
  EXPECT_EQ(sampler.Series("level")[0].t_us, kUsPerSec);
  EXPECT_EQ(sampler.Series("level")[0].value, 2);
  level = 3;
  // One jump over five boundaries: a single sample, stamped at the last
  // crossed boundary (6 s), not replayed at every skipped one.
  clock.Advance(5 * kUsPerSec);
  ASSERT_EQ(sampler.Series("level").size(), 2u);
  EXPECT_EQ(sampler.Series("level")[1].t_us, 6 * kUsPerSec);
  EXPECT_EQ(sampler.Series("level")[1].value, 3);
  clock.RemoveTickHook(hook);
  EXPECT_EQ(clock.tick_hook_count(), 0u);
}

// Regression test for the old SetTickHook last-writer-wins footgun: two
// observers (say a deployment sampler and a hub fan-out) must both keep
// seeing ticks, and removing one must not disturb the other.
TEST(SimClockTest, MultipleTickHooksAllFireAndRemoveIndependently) {
  SimClock clock;
  std::vector<std::pair<int, SimTime>> fired;
  const SimClock::TickHookId a =
      clock.AddTickHook([&](SimTime now) { fired.emplace_back(1, now); });
  const SimClock::TickHookId b =
      clock.AddTickHook([&](SimTime now) { fired.emplace_back(2, now); });
  EXPECT_EQ(clock.tick_hook_count(), 2u);

  clock.Advance(10);
  // Both hooks fire, in registration order.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<int, SimTime>{1, 10}));
  EXPECT_EQ(fired[1], (std::pair<int, SimTime>{2, 10}));

  clock.RemoveTickHook(a);
  clock.AdvanceTo(25);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[2], (std::pair<int, SimTime>{2, 25}));

  // Removing an already-removed (or never-issued) handle is a no-op.
  clock.RemoveTickHook(a);
  clock.RemoveTickHook(12345);
  EXPECT_EQ(clock.tick_hook_count(), 1u);
  clock.RemoveTickHook(b);
  clock.Advance(5);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(TimeSeriesSamplerTest, ZeroCadenceDisablesSampling) {
  SimClock clock;
  TimeSeriesSampler sampler(/*cadence_us=*/0, /*capacity=*/4);
  sampler.AddSeries("x", [] { return int64_t{42}; });
  sampler.Poll(10 * kUsPerSec);
  EXPECT_EQ(sampler.samples_taken(), 0u);
  EXPECT_TRUE(sampler.Series("x").empty());
}

TEST(TimeSeriesSamplerTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    SimClock clock;
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock);
    EXPECT_TRUE(hl.ok());
    uint32_t ino = *(*hl)->fs().Create("/f");
    EXPECT_TRUE((*hl)->fs().Write(ino, 0, Pattern(256 * 1024, 99)).ok());
    EXPECT_TRUE((*hl)->Migrate(MigrationRequest{.path = "/f"}).ok());
    EXPECT_TRUE((*hl)->DropCleanCacheLines().ok());
    std::vector<uint8_t> out(4096);
    EXPECT_TRUE((*hl)->fs().Read(ino, 0, out).ok());
    // Both observation products must be reproducible bit-for-bit.
    return (*hl)->timeseries().ToJson() +
           (*hl)->spans().ToJson((*hl)->spans().capacity());
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- Percentiles ---------------------------------------------------------

TEST(HistogramPercentileTest, PercentilesTrackObservedDistribution) {
  MetricsRegistry registry;
  Histogram h;
  h.BindTo(registry, "lat");
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Observe(v * 1000);  // 1 ms .. 100 ms.
  }
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const Histogram::Data& d = snap.histograms[0].second;
  EXPECT_EQ(d.Percentile(1.0), 100'000u);  // Exact: the max.
  // Power-of-two buckets: estimates land within the right bucket's range.
  const uint64_t p50 = d.Percentile(0.5);
  EXPECT_GE(p50, 32'768u);
  EXPECT_LE(p50, 65'536u);
  const uint64_t p99 = d.Percentile(0.99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 100'000u);
  // And the snapshot JSON surfaces them for the BENCH files / --metrics.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

}  // namespace
}  // namespace hl
