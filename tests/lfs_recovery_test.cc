// Crash-recovery tests: checkpoint + remount, roll-forward past the last
// checkpoint, torn-log rejection, and corrupted checkpoint regions.

#include <gtest/gtest.h>

#include <cstring>

#include "blockdev/sim_disk.h"
#include "lfs/lfs.h"
#include "util/rng.h"

namespace hl {
namespace {

constexpr uint32_t kTestDiskBlocks = 16 * 1024;

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class LfsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", kTestDiskBlocks, Rz57Profile(),
                                      &clock_);
    params_.seg_size_blocks = 64;
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params_);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  // "Crash": drop the in-memory file system without checkpointing, then
  // remount from the device image.
  void CrashAndRemount() {
    fs_.reset();
    auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  LfsParams params_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(LfsRecoveryTest, CleanRemountAfterCheckpoint) {
  Result<uint32_t> ino = fs_->Create("/persist");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(128 * 1024, 1);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());

  CrashAndRemount();

  Result<uint32_t> found = fs_->LookupPath("/persist");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = fs_->Read(*found, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(LfsRecoveryTest, RollForwardRecoversSyncedData) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  // Data written and synced AFTER the checkpoint lives only in the log.
  Result<uint32_t> ino = fs_->Create("/after-cp");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(200 * 1024, 2);
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());  // Sync, NOT checkpoint.

  CrashAndRemount();

  Result<uint32_t> found = fs_->LookupPath("/after-cp");
  ASSERT_TRUE(found.ok()) << "roll-forward lost the file";
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LfsRecoveryTest, UnsyncedDataIsLostButFsIsConsistent) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  Result<uint32_t> ino = fs_->Create("/volatile");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(4096, 3)).ok());
  // No sync: the dirty block never reached the device.

  CrashAndRemount();

  EXPECT_FALSE(fs_->LookupPath("/volatile").ok());
  // The file system still works.
  Result<uint32_t> fresh = fs_->Create("/fresh");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fs_->Write(*fresh, 0, Pattern(4096, 4)).ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
}

TEST_F(LfsRecoveryTest, RollForwardAcrossManySegments) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  // Write several segments' worth of data post-checkpoint.
  Result<uint32_t> ino = fs_->Create("/big-after-cp");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(2 << 20, 5);  // 2 MB over 256 KB segments.
  ASSERT_TRUE(fs_->Write(*ino, 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());

  CrashAndRemount();

  Result<uint32_t> found = fs_->LookupPath("/big-after-cp");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LfsRecoveryTest, OverwritesRecoverLatestVersion) {
  Result<uint32_t> ino = fs_->Create("/versioned");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(64 * 1024, 6)).ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  auto v2 = Pattern(64 * 1024, 7);
  ASSERT_TRUE(fs_->Write(*ino, 0, v2).ok());
  ASSERT_TRUE(fs_->Sync().ok());

  CrashAndRemount();

  Result<uint32_t> found = fs_->LookupPath("/versioned");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(v2.size());
  ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
  EXPECT_EQ(out, v2);
}

TEST_F(LfsRecoveryTest, TornLogTailIsIgnored) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  Result<uint32_t> ino = fs_->Create("/t");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(32 * 1024, 8)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  uint32_t seg = fs_->cur_seg();
  uint32_t off = fs_->cur_offset();
  fs_.reset();

  // Corrupt the first block after the log tail to look like garbage that a
  // naive scan might trip over; recovery must stop cleanly.
  if (off < 63) {
    std::vector<uint8_t> junk(kBlockSize, 0x5C);
    Superblock sb;  // Geometry is fixed by the test params.
    uint32_t base = kDefaultReservedBlocks + seg * 64 + off;
    ASSERT_TRUE(disk_->WriteBlocks(base, 1, junk).ok());
  }
  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(*fs);
  EXPECT_TRUE(fs_->LookupPath("/t").ok());
}

TEST_F(LfsRecoveryTest, OneCorruptCheckpointRegionIsTolerated) {
  Result<uint32_t> ino = fs_->Create("/cp-test");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());  // Both slots now hold checkpoints.
  fs_.reset();

  std::vector<uint8_t> junk(kBlockSize, 0xEE);
  ASSERT_TRUE(disk_->WriteBlocks(kCheckpointBlockA, 1, junk).ok());

  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_TRUE((*fs)->LookupPath("/cp-test").ok());
}

TEST_F(LfsRecoveryTest, BothCheckpointsCorruptFailsCleanly) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();
  std::vector<uint8_t> junk(kBlockSize, 0xEE);
  ASSERT_TRUE(disk_->WriteBlocks(kCheckpointBlockA, 1, junk).ok());
  ASSERT_TRUE(disk_->WriteBlocks(kCheckpointBlockB, 1, junk).ok());
  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  EXPECT_FALSE(fs.ok());
  EXPECT_EQ(fs.status().code(), ErrorCode::kCorruption);
}

TEST_F(LfsRecoveryTest, DirectoryTreeSurvivesRecovery) {
  ASSERT_TRUE(fs_->Checkpoint().ok());
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  Result<uint32_t> ino = fs_->Create("/a/b/leaf");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(1000, 9)).ok());
  ASSERT_TRUE(fs_->Sync().ok());

  CrashAndRemount();

  Result<uint32_t> found = fs_->LookupPath("/a/b/leaf");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
  EXPECT_EQ(out, Pattern(1000, 9));
}

TEST_F(LfsRecoveryTest, RepeatedCrashesDoNotCompound) {
  for (int round = 0; round < 5; ++round) {
    std::string path = "/round" + std::to_string(round);
    Result<uint32_t> ino = fs_->Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(16 * 1024, 10 + round)).ok());
    if (round % 2 == 0) {
      ASSERT_TRUE(fs_->Checkpoint().ok());
    } else {
      ASSERT_TRUE(fs_->Sync().ok());
    }
    CrashAndRemount();
    for (int r = 0; r <= round; ++r) {
      std::string p = "/round" + std::to_string(r);
      ASSERT_TRUE(fs_->LookupPath(p).ok()) << p << " lost in round " << round;
    }
  }
}

}  // namespace
}  // namespace hl
