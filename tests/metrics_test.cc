// Unit tests for the unified metrics/trace layer: handle semantics (detached
// counting, BindTo folding, name-keyed slot sharing), histogram bucketing,
// trace ring wraparound, and the registry's behavior across a HighLightFs
// Remount (counters accumulate because slots are keyed by name).

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace hl {
namespace {

TEST(CounterTest, DetachedCountsFoldIntoSlotOnBind) {
  Counter c;
  c.Inc();
  c.Inc(4);
  ++c;
  c += 10;
  EXPECT_EQ(c.value(), 16u);

  MetricsRegistry registry;
  c.BindTo(registry, "x");
  EXPECT_EQ(c.value(), 16u);
  EXPECT_EQ(registry.Snapshot().Value("x"), 16u);

  c.Inc();
  EXPECT_EQ(registry.Snapshot().Value("x"), 17u);
}

TEST(CounterTest, SameNameSharesOneSlot) {
  MetricsRegistry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.Inc(3);
  b.Inc(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.Snapshot().Value("shared"), 5u);
}

TEST(CounterTest, ImplicitConversionMatchesValue) {
  Counter c;
  c.Inc(7);
  uint64_t v = c;
  EXPECT_EQ(v, 7u);
}

TEST(GaugeTest, SetTracksHighWaterMark) {
  Gauge g;
  g.Set(5);
  g.Set(9);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 9);
  g.Add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max(), 12);
}

TEST(GaugeTest, BindPreservesValueAndMax) {
  Gauge g;
  g.Set(4);
  g.Set(1);
  MetricsRegistry registry;
  g.BindTo(registry, "depth");
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max(), 4);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.Has("depth"));
  EXPECT_EQ(snap.gauges[0].second.value, 1);
  EXPECT_EQ(snap.gauges[0].second.max, 4);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  // Bucket i holds v with bit_width(v) == i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // The last bucket is a catch-all for absurdly large latencies.
  EXPECT_EQ(Histogram::BucketOf(~0ull), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ObserveAccumulatesMoments) {
  Histogram h;
  h.Observe(10);
  h.Observe(30);
  h.Observe(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_EQ(h.bucket(Histogram::BucketOf(10)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketOf(30)), 2u);  // 20 and 30: width 5.
}

TEST(HistogramTest, BindFoldsDetachedObservations) {
  Histogram h;
  h.Observe(100);
  MetricsRegistry registry;
  h.BindTo(registry, "lat");
  h.Observe(200);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 2u);
  EXPECT_EQ(snap.histograms[0].second.sum, 300u);
}

TEST(RegistryTest, ResetZeroesButHandlesStayValid) {
  MetricsRegistry registry;
  Counter c = registry.counter("n");
  c.Inc(5);
  registry.Reset();
  EXPECT_EQ(registry.Snapshot().Value("n"), 0u);
  c.Inc(2);
  EXPECT_EQ(registry.Snapshot().Value("n"), 2u);
}

TEST(RegistryTest, SnapshotRatioAndJson) {
  MetricsRegistry registry;
  registry.counter("hits").Inc(3);
  registry.counter("misses").Inc(1);
  registry.gauge("depth").Set(2);
  registry.histogram("lat").Observe(42);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Ratio("hits", "misses"), 0.75);
  EXPECT_EQ(snap.Value("absent"), 0u);
  EXPECT_FALSE(snap.Has("absent"));
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

TEST(TraceRingTest, WraparoundKeepsNewestOldestFirst) {
  SimClock clock;
  TraceRing ring(&clock, /*capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    clock.Advance(10);
    ring.Record(TraceEvent::kSegFetch, i, 0);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  std::vector<TraceRecord> recent = ring.Recent(10);
  ASSERT_EQ(recent.size(), 4u);
  // Records 0 and 1 were overwritten; the survivors are 2..5, oldest first.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].a, i + 2);
  }
  EXPECT_LT(recent.front().time, recent.back().time);
  // CountOf is a lifetime counter (all 6 recorded events); WindowCountOf
  // scans only the 4 surviving ring entries.
  EXPECT_EQ(ring.CountOf(TraceEvent::kSegFetch), 6u);
  EXPECT_EQ(ring.WindowCountOf(TraceEvent::kSegFetch), 4u);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.CountOf(TraceEvent::kSegFetch), 0u);
}

TEST(TraceRingTest, RecentTruncatesToRequestedCount) {
  SimClock clock;
  TraceRing ring(&clock, 8);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Record(TraceEvent::kCopyOut, i, i * 2);
  }
  std::vector<TraceRecord> recent = ring.Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].a, 3u);
  EXPECT_EQ(recent[1].a, 4u);
}

TEST(TracerTest, DefaultConstructedIsNoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Record(TraceEvent::kCacheEvict, 1, 2);  // Must not crash.
}

TEST(TraceRingTest, JsonNamesAreStable) {
  SimClock clock;
  TraceRing ring(&clock, 8);
  ring.Record(TraceEvent::kVolumeSwitch, 1, 2);
  std::string json = ring.ToJson(ring.capacity());
  EXPECT_NE(json.find("\"volume_switch\""), std::string::npos);
}

// End-to-end: the assembled system's registry, and its behavior across a
// simulated crash + remount.
class MetricsRemountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});  // 64 MB.
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 20ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 20});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  // Writes a file and migrates it, moving cache/io/migrator counters.
  void WriteAndMigrate(const std::string& path) {
    Result<uint32_t> ino = hl_->fs().Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(
        hl_->fs().Write(*ino, 0, std::vector<uint8_t>(300 * 1024, 0x5A)).ok());
    ASSERT_TRUE(hl_->fs().Sync().ok());
    ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = path}).ok());
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(MetricsRemountTest, MigrationMovesRegistryCounters) {
  WriteAndMigrate("/a");
  MetricsSnapshot snap = hl_->Metrics();
  EXPECT_GT(snap.Value("io.segments_copied_out"), 0u);
  EXPECT_GT(snap.Value("cache.staged_lines"), 0u);
  EXPECT_GT(snap.Value("disk.disk0.writes"), 0u);
  EXPECT_GT(snap.Value("jukebox.HP6300-MO.bytes_written"), 0u);
  EXPECT_GT(snap.Value("footprint.media_swaps"), 0u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kCopyOut), 0u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kVolumeSwitch), 0u);
}

TEST_F(MetricsRemountTest, CountersAccumulateAcrossRemount) {
  WriteAndMigrate("/a");
  MetricsSnapshot before = hl_->Metrics();
  uint64_t copyouts = before.Value("io.segments_copied_out");
  uint64_t staged = before.Value("cache.staged_lines");
  ASSERT_GT(copyouts, 0u);

  ASSERT_TRUE(hl_->Remount().ok());
  // Rebuilt components re-bind to the same name-keyed slots: nothing lost.
  MetricsSnapshot after_remount = hl_->Metrics();
  EXPECT_EQ(after_remount.Value("io.segments_copied_out"), copyouts);
  EXPECT_EQ(hl_->trace().CountOf(TraceEvent::kRemount), 1u);

  WriteAndMigrate("/b");
  MetricsSnapshot after = hl_->Metrics();
  EXPECT_GT(after.Value("io.segments_copied_out"), copyouts);
  EXPECT_GT(after.Value("cache.staged_lines"), staged);
}

TEST_F(MetricsRemountTest, DemandFaultCountsMissAndHitOnReRead) {
  WriteAndMigrate("/a");
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  hl_->fs().FlushBufferCache();
  Result<uint32_t> ino = hl_->fs().LookupPath("/a");
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> out(300 * 1024);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  MetricsSnapshot snap = hl_->Metrics();
  EXPECT_GT(snap.Value("cache.misses"), 0u);
  EXPECT_GT(snap.Value("blockmap.demand_faults"), 0u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kDemandFault), 0u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kSegFetch), 0u);

  // Re-reading the now-cached data is a hit.
  hl_->fs().FlushBufferCache();
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_GT(hl_->Metrics().Value("cache.hits"), 0u);
}

}  // namespace
}  // namespace hl
