// Tests for the trace generators and the trace replayer (high/low-water
// migration driving).

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "workload/replayer.h"
#include "workload/trace.h"

namespace hl {
namespace {

TEST(TraceGeneratorTest, WorkstationTraceIsWellFormed) {
  WorkstationTraceParams params;
  params.days = 4;
  params.projects = 3;
  params.files_per_project = 5;
  Trace trace = GenerateWorkstationTrace(params);
  EXPECT_EQ(trace.name, "workstation");
  EXPECT_GT(trace.events.size(), 30u);
  // Sorted by time.
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].at, trace.events[i].at);
  }
  EXPECT_GT(trace.TotalBytesWritten(), 0u);
  EXPECT_GT(trace.TotalBytesRead(), 0u);
}

TEST(TraceGeneratorTest, TracesAreDeterministic) {
  Trace a = GenerateSupercomputingTrace({});
  Trace b = GenerateSupercomputingTrace({});
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].path, b.events[i].path);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].size, b.events[i].size);
  }
}

TEST(TraceGeneratorTest, SupercomputingDeletesOldGenerations) {
  Trace trace = GenerateSupercomputingTrace({});
  int deletes = 0;
  for (const WorkloadEvent& e : trace.events) {
    if (e.op == TraceOp::kDelete) {
      ++deletes;
    }
  }
  EXPECT_GT(deletes, 0);
}

TEST(TraceGeneratorTest, SequoiaMixesImagesAndDb) {
  Trace trace = GenerateSequoiaTrace({});
  bool db_read = false;
  bool image_write = false;
  for (const WorkloadEvent& e : trace.events) {
    if (e.op == TraceOp::kRead && e.path == "/rel.heap") {
      db_read = true;
    }
    if (e.op == TraceOp::kWrite && e.path.find("/img-day") == 0) {
      image_write = true;
    }
  }
  EXPECT_TRUE(db_read);
  EXPECT_TRUE(image_write);
}

class ReplayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 12 * 1024});  // 48 MB: tight.
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 6;
    config.jukeboxes.push_back({j, false, 0});
    config.lfs.cache_max_segments = 10;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(ReplayerTest, ReplaysWorkstationTraceWithMigrationPressure) {
  WorkstationTraceParams params;
  params.days = 6;
  params.projects = 4;
  params.files_per_project = 12;
  // ~48 MB total: exceeds the 48 MB disk's ~37 MB log area, so the
  // water-mark scheme must migrate to keep the system writable.
  params.mean_file_bytes = 1 << 20;
  Trace trace = GenerateWorkstationTrace(params);

  StpPolicy stp;
  TraceReplayer replayer(hl_.get(), &stp);
  Result<ReplayStats> stats = replayer.Replay(trace);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->writes, 0u);
  EXPECT_GT(stats->reads, 0u);
  // The tight disk forced at least one migration run.
  EXPECT_GT(stats->migration_runs, 0u);
  EXPECT_GT(stats->bytes_migrated, 0u);
  // The system stayed within disk bounds: clean segments exist at the end.
  EXPECT_GT(hl_->fs().CleanSegmentCount(), 0u);
}

TEST_F(ReplayerTest, LatencyStatsAreConsistent) {
  WorkstationTraceParams params;
  params.days = 3;
  params.projects = 2;
  params.files_per_project = 6;
  Trace trace = GenerateWorkstationTrace(params);
  StpPolicy stp;
  TraceReplayer replayer(hl_.get(), &stp);
  Result<ReplayStats> stats = replayer.Replay(trace);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->max_read_latency, stats->total_read_latency);
  EXPECT_LE(stats->slow_reads, stats->reads);
  EXPECT_GE(stats->MeanReadLatencyMs(), 0.0);
}

TEST_F(ReplayerTest, DeletedFilesDoNotBreakReplay) {
  Trace trace;
  trace.name = "delete-heavy";
  trace.events = {
      {0, TraceOp::kCreate, "/a", 0, 0},
      {1, TraceOp::kWrite, "/a", 0, 8192},
      {2, TraceOp::kDelete, "/a", 0, 0},
      {3, TraceOp::kRead, "/a", 0, 8192},     // Read after delete: benign.
      {4, TraceOp::kDelete, "/a", 0, 0},      // Double delete: benign.
      {5, TraceOp::kMkdir, "/d", 0, 0},
      {6, TraceOp::kMkdir, "/d", 0, 0},       // Double mkdir: benign.
  };
  StpPolicy stp;
  TraceReplayer replayer(hl_.get(), &stp);
  Result<ReplayStats> stats = replayer.Replay(trace);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->writes, 1u);
}

}  // namespace
}  // namespace hl
