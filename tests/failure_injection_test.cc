// Failure-injection tests: device errors surface as clean Status failures,
// the system stays consistent, and retries succeed once the fault clears.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(FailureInjectionTest, JukeboxFailureDuringDemandFetchSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 1);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // The drive keeps failing past the retry budget (3 attempts): the read
  // fails cleanly...
  hl_->Internals().jukebox(0).FailNextOps(3);
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kIoError);
  // ... after charging backed-off retries ...
  EXPECT_GE(hl_->Internals().io_server.stats().retries, 2u);
  // ... without registering a bogus cache line ...
  EXPECT_EQ(hl_->Internals().cache.Used(), 0u);
  // ... and the retry succeeds.
  Result<size_t> again = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(out, data);
}

TEST_F(FailureInjectionTest, TransientJukeboxFaultIsRetriedThrough) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 11);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // Two transient faults stay inside the 3-attempt budget: the application
  // never sees them, but the backoff costs simulated time.
  hl_->Internals().jukebox(0).FailNextOps(2);
  const SimTime before = clock_.Now();
  const uint64_t retries_before = hl_->Internals().io_server.stats().retries;
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(hl_->Internals().io_server.stats().retries, retries_before + 2);
  const RetryPolicy policy;  // Defaults match the config's defaults.
  EXPECT_GE(clock_.Now() - before, policy.BackoffFor(1) + policy.BackoffFor(2));
}

TEST_F(FailureInjectionTest, JukeboxFailureDuringCopyOutSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(128 * 1024, 2)).ok());
  // Outlast the retry budget so the failure surfaces to the caller.
  hl_->Internals().jukebox(0).FailNextOps(3);
  Result<MigrationReport> r = hl_->Migrate(MigrationRequest{.path = "/f"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
  // The staged segment stays on the pending ledger until copy-out lands.
  EXPECT_GT(hl_->Internals().migrator.PendingSegments(), 0u);

  // The staged segment still holds the only... no: pointers were flipped at
  // staging time and the cache line is pinned dirty, so data remain
  // readable from the staging line.
  std::vector<uint8_t> out(128 * 1024);
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, Pattern(128 * 1024, 2));

  // Draining later (fault cleared) completes the migration and releases
  // the staging pin.
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(128 * 1024, 2));
}

TEST_F(FailureInjectionTest, DiskFailureDuringSyncSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  // Small enough (100 KB < one 256 KB segment) that nothing auto-flushes
  // before the injected fault.
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(100 * 1024, 3)).ok());
  hl_->Internals().disk(0).FailNextOps(1);
  Status s = hl_->fs().Sync();
  EXPECT_EQ(s.code(), ErrorCode::kIoError);
  // Dirty data survived the failed flush; a later sync lands them.
  ASSERT_TRUE(hl_->fs().Sync().ok());
  std::vector<uint8_t> out(100 * 1024);
  hl_->fs().FlushBufferCache();
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(100 * 1024, 3));
}

TEST_F(FailureInjectionTest, MediaCorruptionDetectedByChecksum) {
  // Scribble over a migrated segment ON THE MEDIUM; the whole-segment CRC
  // stamped at copy-out refuses to install the corrupted image.
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 4)).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  Result<Volume*> vol = hl_->Internals().footprint.GetVolume(0);
  ASSERT_TRUE(vol.ok());
  // Corrupt the first segment's summary block on the medium.
  std::vector<uint8_t> junk(kBlockSize, 0x5C);
  ASSERT_TRUE((*vol)->Write(0, junk).ok());

  // The demand fetch detects the corruption instead of serving bad bytes
  // (there is no replica to fail over to here, so the error surfaces).
  std::vector<uint8_t> out(256 * 1024);
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kCorruption);
  EXPECT_GT(hl_->Internals().io_server.stats().crc_mismatches, 0u);
  EXPECT_EQ(hl_->Internals().cache.Used(), 0u);

  // The media-side summary checksums agree: a raw segment-level parse of
  // the on-medium image reports no valid partial segments (the cleaner
  // would treat it as empty, not as data).
  uint32_t first_tseg = hl_->Internals().address_map.FirstTsegOfVolume(0);
  uint32_t spb = hl_->fs().superblock().seg_size_blocks;
  std::vector<uint8_t> image(static_cast<size_t>(spb) * kBlockSize);
  ASSERT_TRUE((*vol)->Read(0, image).ok());
  EXPECT_TRUE(ParsePartialsFromImage(
                  image, hl_->Internals().address_map.TsegBase(first_tseg), spb)
                  .empty());
}

TEST_F(FailureInjectionTest, FailedDemandFetchLeavesNoReadaheadResidue) {
  // Rebuild with sequential read-ahead on: a failed demand fetch must not
  // leave pending read-aheads or stale cache lines behind (and a dropped
  // read-ahead image must be counted as wasted).
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 8 * 1024});
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = 4;
  j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
  config.jukeboxes.push_back({j, false, 16});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = 8;
  config.sequential_readahead = true;
  SimClock clock;
  auto made = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(made.ok());
  std::unique_ptr<HighLightFs> hl = std::move(*made);

  Result<uint32_t> ino = hl->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(512 * 1024, 6);  // Two 256 KB segments.
  ASSERT_TRUE(hl->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl->DropCleanCacheLines().ok());

  // Exhaust the retry budget: the demand fetch of the first segment fails
  // before any read-ahead is ever issued. (128 KB stays inside one
  // segment's data blocks.)
  hl->Internals().jukebox(0).FailNextOps(3);
  std::vector<uint8_t> out(128 * 1024);
  Result<size_t> n = hl->fs().Read(*ino, 0, out);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(hl->Internals().service.PendingPrefetches(), 0u);
  EXPECT_EQ(hl->Internals().service.stats().readaheads_issued, 0u);
  EXPECT_EQ(hl->Internals().cache.Used(), 0u);

  // Fault cleared: the fetch succeeds and chases the next segment ahead.
  ASSERT_TRUE(hl->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(std::vector<uint8_t>(data.begin(), data.begin() + out.size()),
            out);
  EXPECT_EQ(hl->Internals().service.stats().readaheads_issued, 1u);
  EXPECT_EQ(hl->Internals().service.PendingPrefetches(), 1u);

  // A sequential miss into the second segment consumes the buffered image
  // (and chases the third segment in turn).
  ASSERT_TRUE(hl->fs().Read(*ino, 300 * 1024, out).ok());
  EXPECT_EQ(std::vector<uint8_t>(data.begin() + 300 * 1024,
                                 data.begin() + 300 * 1024 + out.size()),
            out);
  EXPECT_EQ(hl->Internals().service.stats().readaheads_consumed, 1u);
  EXPECT_EQ(hl->Internals().service.stats().readaheads_wasted, 0u);

  // Dropping the cache discards the chased image and counts it as wasted —
  // no pending entry survives to alias a future fetch.
  const uint64_t pending = hl->Internals().service.PendingPrefetches();
  ASSERT_TRUE(hl->DropCleanCacheLines().ok());
  EXPECT_EQ(hl->Internals().service.PendingPrefetches(), 0u);
  EXPECT_EQ(hl->Internals().service.stats().readaheads_wasted, pending);
}

TEST_F(FailureInjectionTest, RepeatedFaultsDoNotWedgeTheSystem) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(512 * 1024, 5);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/f"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  std::vector<uint8_t> out(data.size());
  for (int round = 0; round < 5; ++round) {
    hl_->Internals().jukebox(0).FailNextOps(1);
    (void)hl_->fs().Read(*ino, 0, out);  // May fail; must not wedge.
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << "round " << round;
    ASSERT_EQ(out, data);
    ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  }
  // The image is still structurally sound.
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  FsckReport report = CheckFs(hl_->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);
}

}  // namespace
}  // namespace hl
