// Failure-injection tests: device errors surface as clean Status failures,
// the system stays consistent, and retries succeed once the fault clears.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(FailureInjectionTest, JukeboxFailureDuringDemandFetchSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 1);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->MigratePath("/f").ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // The robot drops the ball once: the read fails cleanly...
  hl_->jukebox(0).FailNextOps(1);
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kIoError);
  // ... without registering a bogus cache line ...
  EXPECT_EQ(hl_->cache().Used(), 0u);
  // ... and the retry succeeds.
  Result<size_t> again = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(out, data);
}

TEST_F(FailureInjectionTest, JukeboxFailureDuringCopyOutSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(128 * 1024, 2)).ok());
  hl_->jukebox(0).FailNextOps(1);
  Result<MigrationReport> r = hl_->MigratePath("/f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);

  // The staged segment still holds the only... no: pointers were flipped at
  // staging time and the cache line is pinned dirty, so data remain
  // readable from the staging line.
  std::vector<uint8_t> out(128 * 1024);
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, Pattern(128 * 1024, 2));

  // Draining later (fault cleared) completes the migration.
  ASSERT_TRUE(hl_->migrator().FlushStaging().ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(128 * 1024, 2));
}

TEST_F(FailureInjectionTest, DiskFailureDuringSyncSurfaces) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  // Small enough (100 KB < one 256 KB segment) that nothing auto-flushes
  // before the injected fault.
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(100 * 1024, 3)).ok());
  hl_->disk(0).FailNextOps(1);
  Status s = hl_->fs().Sync();
  EXPECT_EQ(s.code(), ErrorCode::kIoError);
  // Dirty data survived the failed flush; a later sync lands them.
  ASSERT_TRUE(hl_->fs().Sync().ok());
  std::vector<uint8_t> out(100 * 1024);
  hl_->fs().FlushBufferCache();
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(100 * 1024, 3));
}

TEST_F(FailureInjectionTest, MediaCorruptionDetectedByChecksum) {
  // Scribble over a migrated segment ON THE MEDIUM; the parse-side
  // checksums catch it (the paper's ss_sumsum/ss_datasum at work).
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 4)).ok());
  ASSERT_TRUE(hl_->MigratePath("/f").ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  Result<Volume*> vol = hl_->footprint().GetVolume(0);
  ASSERT_TRUE(vol.ok());
  // Corrupt the first segment's summary block on the medium.
  std::vector<uint8_t> junk(kBlockSize, 0x5C);
  ASSERT_TRUE((*vol)->Write(0, junk).ok());

  // Data reads still work (block pointers, not summaries, drive reads)...
  std::vector<uint8_t> out(256 * 1024);
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  // ...but a segment-level parse of the fetched image reports no valid
  // partial segments (the cleaner would treat it as empty, not as data).
  uint32_t first_tseg = hl_->address_map().FirstTsegOfVolume(0);
  uint32_t spb = hl_->fs().superblock().seg_size_blocks;
  std::vector<uint8_t> image(static_cast<size_t>(spb) * kBlockSize);
  ASSERT_TRUE(hl_->block_map()
                  .ReadBlocks(hl_->address_map().TsegBase(first_tseg), spb,
                              image)
                  .ok());
  EXPECT_TRUE(ParsePartialsFromImage(
                  image, hl_->address_map().TsegBase(first_tseg), spb)
                  .empty());
}

TEST_F(FailureInjectionTest, RepeatedFaultsDoNotWedgeTheSystem) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(512 * 1024, 5);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  ASSERT_TRUE(hl_->MigratePath("/f").ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  std::vector<uint8_t> out(data.size());
  for (int round = 0; round < 5; ++round) {
    hl_->jukebox(0).FailNextOps(1);
    (void)hl_->fs().Read(*ino, 0, out);  // May fail; must not wedge.
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << "round " << round;
    ASSERT_EQ(out, data);
    ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  }
  // The image is still structurally sound.
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  FsckReport report = CheckFs(hl_->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);
}

}  // namespace
}  // namespace hl
