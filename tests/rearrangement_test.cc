// Tests for hard links and the section 5.4 rearrangement mechanism
// (re-clustering tertiary-resident data by observed access pattern).

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "highlight/highlight.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

// --- Hard links ---------------------------------------------------------------

class HardLinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", 8 * 1024, Rz57Profile(), &clock_);
    LfsParams params;
    params.seg_size_blocks = 64;
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(HardLinkTest, LinkSharesTheInode) {
  Result<uint32_t> ino = fs_->Create("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(10000, 1)).ok());
  ASSERT_TRUE(fs_->Link("/orig", "/alias").ok());
  Result<uint32_t> alias = fs_->LookupPath("/alias");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*alias, *ino);
  EXPECT_EQ(fs_->Stat(*ino)->nlink, 2);
  // Writes through one name are visible through the other.
  ASSERT_TRUE(fs_->Write(*alias, 0, Pattern(10000, 2)).ok());
  std::vector<uint8_t> out(10000);
  ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(10000, 2));
}

TEST_F(HardLinkTest, UnlinkOneNameKeepsTheFile) {
  Result<uint32_t> ino = fs_->Create("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(5000, 3)).ok());
  ASSERT_TRUE(fs_->Link("/orig", "/alias").ok());
  ASSERT_TRUE(fs_->Unlink("/orig").ok());
  Result<uint32_t> alias = fs_->LookupPath("/alias");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(fs_->Stat(*alias)->nlink, 1);
  std::vector<uint8_t> out(5000);
  ASSERT_TRUE(fs_->Read(*alias, 0, out).ok());
  EXPECT_EQ(out, Pattern(5000, 3));
  // The last unlink frees it.
  ASSERT_TRUE(fs_->Unlink("/alias").ok());
  EXPECT_FALSE(fs_->Stat(*alias).ok());
}

TEST_F(HardLinkTest, DirectoryLinksRejected) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Link("/d", "/d2").code(), ErrorCode::kIsADirectory);
}

TEST_F(HardLinkTest, LinkToExistingNameRejected) {
  ASSERT_TRUE(fs_->Create("/a").ok());
  ASSERT_TRUE(fs_->Create("/b").ok());
  EXPECT_EQ(fs_->Link("/a", "/b").code(), ErrorCode::kExists);
}

TEST_F(HardLinkTest, LinksSurviveRemount) {
  Result<uint32_t> ino = fs_->Create("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Link("/orig", "/alias").ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();
  LfsParams params;
  params.seg_size_blocks = 64;
  auto fs = Lfs::Mount(disk_.get(), &clock_, params);
  ASSERT_TRUE(fs.ok());
  Result<uint32_t> a = (*fs)->LookupPath("/orig");
  Result<uint32_t> b = (*fs)->LookupPath("/alias");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

// --- Rearrangement --------------------------------------------------------------

class RearrangementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 24ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 24});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 6;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  // Count how many distinct tertiary segments a file's blocks span.
  uint32_t SegmentSpan(uint32_t ino) {
    std::set<uint32_t> tsegs;
    Result<std::vector<BlockRef>> refs = hl_->fs().CollectFileBlocks(ino);
    EXPECT_TRUE(refs.ok());
    for (const BlockRef& r : *refs) {
      if (hl_->Internals().address_map.Classify(r.daddr) ==
          AddressMap::Zone::kTertiary) {
        tsegs.insert(hl_->Internals().address_map.TsegOf(r.daddr));
      }
    }
    return static_cast<uint32_t>(tsegs.size());
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(RearrangementTest, ClusteringReducesSegmentSpan) {
  // Interleave the migration of two files block-range-wise so each file's
  // blocks smear across many segments.
  Result<uint32_t> a = hl_->fs().Create("/a");
  Result<uint32_t> b = hl_->fs().Create("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto data_a = Pattern(512 * 1024, 1);
  auto data_b = Pattern(512 * 1024, 2);
  ASSERT_TRUE(hl_->fs().Write(*a, 0, data_a).ok());
  ASSERT_TRUE(hl_->fs().Write(*b, 0, data_b).ok());
  MigratorOptions opts;
  opts.migrate_inode = false;
  opts.migrate_metadata = false;
  // Alternate 16-block ranges of a and b: worst-case interleave.
  for (uint32_t base = 0; base < 128; base += 16) {
    std::vector<uint32_t> lbns;
    for (uint32_t l = base; l < base + 16; ++l) {
      lbns.push_back(l);
    }
    ASSERT_TRUE(hl_->Internals().migrator.MigrateBlocks(*a, lbns, opts).ok());
    ASSERT_TRUE(hl_->Internals().migrator.MigrateBlocks(*b, lbns, opts).ok());
  }
  uint32_t span_before = SegmentSpan(*a);
  ASSERT_GT(span_before, 2u) << "expected an interleaved layout";

  // Rearrangement: the observed pattern is "file a alone"; cluster it.
  Result<MigrationReport> r = hl_->Internals().migrator.ClusterFiles({*a}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint32_t span_after = SegmentSpan(*a);
  EXPECT_LT(span_after, span_before);
  EXPECT_LE(span_after, 3u);

  // Contents intact through the move, cold.
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(data_a.size());
  ASSERT_TRUE(hl_->fs().Read(*a, 0, out).ok());
  EXPECT_EQ(out, data_a);
  ASSERT_TRUE(hl_->fs().Read(*b, 0, out).ok());
  EXPECT_EQ(out, data_b);
}

TEST_F(RearrangementTest, ClusteringCutsDemandFaults) {
  // Same interleave; measure faults reading file a cold, before vs after.
  Result<uint32_t> a = hl_->fs().Create("/a");
  Result<uint32_t> b = hl_->fs().Create("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(hl_->fs().Write(*a, 0, Pattern(512 * 1024, 3)).ok());
  ASSERT_TRUE(hl_->fs().Write(*b, 0, Pattern(512 * 1024, 4)).ok());
  MigratorOptions opts;
  opts.migrate_inode = false;
  opts.migrate_metadata = false;
  for (uint32_t base = 0; base < 128; base += 8) {
    std::vector<uint32_t> lbns;
    for (uint32_t l = base; l < base + 8; ++l) {
      lbns.push_back(l);
    }
    ASSERT_TRUE(hl_->Internals().migrator.MigrateBlocks(*a, lbns, opts).ok());
    ASSERT_TRUE(hl_->Internals().migrator.MigrateBlocks(*b, lbns, opts).ok());
  }
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  uint64_t faults0 = hl_->Internals().block_map.stats().demand_faults;
  std::vector<uint8_t> out(512 * 1024);
  ASSERT_TRUE(hl_->fs().Read(*a, 0, out).ok());
  uint64_t faults_before = hl_->Internals().block_map.stats().demand_faults - faults0;

  ASSERT_TRUE(hl_->Internals().migrator.ClusterFiles({*a}, opts).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  faults0 = hl_->Internals().block_map.stats().demand_faults;
  ASSERT_TRUE(hl_->fs().Read(*a, 0, out).ok());
  uint64_t faults_after = hl_->Internals().block_map.stats().demand_faults - faults0;
  EXPECT_LT(faults_after, faults_before);

  // The dead pre-rearrangement copies remain reclaimable.
  EXPECT_GT(hl_->Internals().tseg_table.TotalLiveBytes(), 0u);
}

TEST_F(RearrangementTest, ClusterFilesOnDiskOnlyIsNoOp) {
  Result<uint32_t> a = hl_->fs().Create("/disk-only");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(hl_->fs().Write(*a, 0, Pattern(64 * 1024, 5)).ok());
  MigratorOptions opts;
  Result<MigrationReport> r = hl_->Internals().migrator.ClusterFiles({*a}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->blocks_migrated, 0u);
}

}  // namespace
}  // namespace hl
