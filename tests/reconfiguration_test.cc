// Tests for on-line reconfiguration (paper sections 6.4 and 10): adding a
// disk while mounted, retiring segments for disk removal, dynamic cache
// resizing, and the slow-access user notifier.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "highlight/highlight.h"
#include "lfs/cleaner.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});  // 32 MB.
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(ReconfigTest, AddDiskGrowsCleanPool) {
  uint32_t nsegs_before = hl_->fs().NumSegments();
  uint32_t clean_before = hl_->fs().CleanSegmentCount();
  ASSERT_TRUE(hl_->AddDisk({Rz58Profile(), 4 * 1024}).ok());  // +16 MB.
  EXPECT_GT(hl_->fs().NumSegments(), nsegs_before);
  EXPECT_GT(hl_->fs().CleanSegmentCount(), clean_before);

  // New capacity is immediately writable and durable across remount.
  Result<uint32_t> ino = hl_->fs().Create("/grown");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(4 << 20, 1)).ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  ASSERT_TRUE(hl_->Remount().ok());
  std::vector<uint8_t> out(4 << 20);
  Result<uint32_t> found = hl_->fs().LookupPath("/grown");
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(hl_->fs().Read(*found, 0, out).ok());
  EXPECT_EQ(out, Pattern(4 << 20, 1));
}

TEST_F(ReconfigTest, AddDiskFillsIntoNewSegments) {
  // Fill most of the original disk, add a disk, keep writing.
  Result<uint32_t> ino = hl_->fs().Create("/filler");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(20 << 20, 2)).ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  ASSERT_TRUE(hl_->AddDisk({Rz58Profile(), 8 * 1024}).ok());
  Result<uint32_t> more = hl_->fs().Create("/more");
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(hl_->fs().Write(*more, 0, Pattern(10 << 20, 3)).ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());
  std::vector<uint8_t> out(10 << 20);
  ASSERT_TRUE(hl_->fs().Read(*more, 0, out).ok());
  EXPECT_EQ(out, Pattern(10 << 20, 3));
}

TEST_F(ReconfigTest, RetiredSegmentIsNeverAllocated) {
  Lfs& fs = hl_->fs();
  // Retire a handful of clean segments, then churn the log well past them.
  std::vector<uint32_t> retired;
  for (uint32_t seg = 0; seg < fs.NumSegments() && retired.size() < 4;
       ++seg) {
    if (fs.RetireSegment(seg).ok()) {
      retired.push_back(seg);
    }
  }
  ASSERT_EQ(retired.size(), 4u);
  Result<uint32_t> ino = fs.Create("/churn");
  ASSERT_TRUE(ino.ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(fs.Write(*ino, 0, Pattern(4 << 20, 10 + round)).ok());
    ASSERT_TRUE(fs.Sync().ok());
  }
  for (uint32_t seg : retired) {
    EXPECT_EQ(fs.GetSegUsage(seg).flags, kSegNoStore);
    EXPECT_EQ(fs.GetSegUsage(seg).live_bytes, 0u);
  }
}

TEST_F(ReconfigTest, RetireRejectsDirtyAndActiveSegments) {
  Lfs& fs = hl_->fs();
  EXPECT_EQ(fs.RetireSegment(fs.cur_seg()).code(), ErrorCode::kBusy);
  // Write something so a dirty segment exists.
  Result<uint32_t> ino = fs.Create("/d");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs.Write(*ino, 0, Pattern(1 << 20, 4)).ok());
  ASSERT_TRUE(fs.Sync().ok());
  bool found_dirty = false;
  for (uint32_t seg = 0; seg < fs.NumSegments(); ++seg) {
    uint16_t flags = fs.GetSegUsage(seg).flags;
    if ((flags & kSegDirty) && !(flags & kSegActive)) {
      EXPECT_EQ(fs.RetireSegment(seg).code(), ErrorCode::kBusy);
      found_dirty = true;
      break;
    }
  }
  EXPECT_TRUE(found_dirty);
}

TEST_F(ReconfigTest, DiskRemovalViaCleanThenRetire) {
  // The removal recipe from section 6.4: clean the departing segments so
  // their data move elsewhere, then mark them no-store.
  Lfs& fs = hl_->fs();
  Result<uint32_t> ino = fs.Create("/move-me");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs.Write(*ino, 0, Pattern(2 << 20, 5)).ok());
  ASSERT_TRUE(fs.Checkpoint().ok());

  // "Remove" segments 0..15: clean them (relocating live data), retire.
  Cleaner cleaner(&fs);
  for (uint32_t seg = 0; seg < 16; ++seg) {
    uint16_t flags = fs.GetSegUsage(seg).flags;
    if (flags & kSegClean) {
      (void)fs.RetireSegment(seg);
      continue;
    }
    if (seg == fs.cur_seg() || seg == fs.next_seg() ||
        (flags & kSegActive)) {
      continue;  // The log tail cannot be retired while active.
    }
    // CleanOne is private; use the public path: clean broadly until this
    // segment is clean.
    for (int attempt = 0; attempt < 8 && !(fs.GetSegUsage(seg).flags &
                                           kSegClean); ++attempt) {
      ASSERT_TRUE(cleaner.Clean(4).ok());
    }
    if (fs.GetSegUsage(seg).flags & kSegClean) {
      (void)fs.RetireSegment(seg);
    }
  }
  // Data are intact after the evacuation.
  fs.FlushBufferCache();
  std::vector<uint8_t> out(2 << 20);
  ASSERT_TRUE(fs.Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(2 << 20, 5));
}

TEST_F(ReconfigTest, CacheGrowsAndShrinksOnline) {
  SegmentCache& cache = hl_->Internals().cache;
  uint32_t before = cache.Capacity();
  ASSERT_TRUE(cache.Resize(before + 4).ok());
  EXPECT_EQ(cache.Capacity(), before + 4);

  // Fill some lines, then shrink back: clean lines are evicted as needed.
  Result<uint32_t> ino = hl_->fs().Create("/cold");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(1 << 20, 6)).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/cold"}).ok());
  ASSERT_TRUE(cache.Resize(2).ok());
  EXPECT_EQ(cache.Capacity(), 2u);
  EXPECT_LE(cache.Used(), 2u);

  // Contents still readable (demand fetch through the smaller cache).
  std::vector<uint8_t> out(1 << 20);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(1 << 20, 6));
}

TEST_F(ReconfigTest, CacheShrinkBelowPinnedFails) {
  // Stage segments in delayed mode so lines are pinned, then over-shrink.
  Result<uint32_t> ino = hl_->fs().Create("/pinned");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(1 << 20, 7)).ok());
  MigratorOptions delayed;
  delayed.delayed_copyout = true;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, delayed).ok());
  uint32_t pinned = hl_->Internals().migrator.PendingSegments();
  ASSERT_GT(pinned, 0u);
  EXPECT_EQ(hl_->Internals().cache.Resize(pinned - 1).code(), ErrorCode::kBusy);
  // Flush unpins; now the shrink succeeds.
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_TRUE(hl_->Internals().cache.Resize(1).ok());
}

TEST_F(ReconfigTest, SlowAccessNotifierFires) {
  Result<uint32_t> ino = hl_->fs().Create("/slow");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(1 << 20, 8)).ok());
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/slow"}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  std::vector<std::pair<uint32_t, SimTime>> notifications;
  hl_->Internals().service.SetSlowAccessNotifier(
      [&](uint32_t tseg, SimTime estimate) {
        notifications.emplace_back(tseg, estimate);
      });
  std::vector<uint8_t> out(1 << 20);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  ASSERT_FALSE(notifications.empty());
  // First fetch has no history (estimate 0); later ones estimate from it.
  EXPECT_EQ(notifications.front().second, 0u);
  if (notifications.size() > 1) {
    // Estimate derives from real fetch history: hundreds of milliseconds at
    // least (MO transfer of a 256 KB segment).
    EXPECT_GT(notifications.back().second, kUsPerSec / 2);
  }
}

}  // namespace
}  // namespace hl
