// Unit tests for the utility layer: Status/Result, CRC32, serialization, RNG.

#include <gtest/gtest.h>

#include <cstring>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "kOk");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("inode 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "kNotFound: inode 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NoSpace("log full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoSpace);
}

Result<int> Doubler(Result<int> in) {
  ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Internal("boom")).status().code(), ErrorCode::kInternal);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  uint32_t crc = Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32(std::span<const uint8_t>()), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(4096, 0xAB);
  uint32_t before = Crc32(data);
  data[1234] ^= 0x01;
  EXPECT_NE(before, Crc32(data));
}

TEST(SerializeTest, RoundTripsScalars) {
  std::vector<uint8_t> buf(64);
  Writer w(buf);
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutStringField("hello", 10);

  Reader r(buf);
  EXPECT_EQ(r.GetU8(), 0x12);
  EXPECT_EQ(r.GetU16(), 0x3456);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetStringField(10), "hello");
  EXPECT_TRUE(r.Ok());
}

TEST(SerializeTest, LittleEndianLayout) {
  std::vector<uint8_t> buf(4);
  Writer w(buf);
  w.PutU32(0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerializeTest, ReaderOverrunFails) {
  std::vector<uint8_t> buf(2);
  Reader r(buf);
  r.GetU32();
  EXPECT_FALSE(r.Ok());
  EXPECT_FALSE(r.ToStatus("test").ok());
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace hl
