// Unit tests for the utility layer: Status/Result, CRC32, serialization,
// RNG, fault injection, and device health tracking.

#include <gtest/gtest.h>

#include <cstring>

#include "sim/sim_clock.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/health.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "kOk");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("inode 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "kNotFound: inode 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NoSpace("log full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoSpace);
}

Result<int> Doubler(Result<int> in) {
  ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Internal("boom")).status().code(), ErrorCode::kInternal);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  uint32_t crc = Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32(std::span<const uint8_t>()), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(4096, 0xAB);
  uint32_t before = Crc32(data);
  data[1234] ^= 0x01;
  EXPECT_NE(before, Crc32(data));
}

TEST(SerializeTest, RoundTripsScalars) {
  std::vector<uint8_t> buf(64);
  Writer w(buf);
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutStringField("hello", 10);

  Reader r(buf);
  EXPECT_EQ(r.GetU8(), 0x12);
  EXPECT_EQ(r.GetU16(), 0x3456);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetStringField(10), "hello");
  EXPECT_TRUE(r.Ok());
}

TEST(SerializeTest, LittleEndianLayout) {
  std::vector<uint8_t> buf(4);
  Writer w(buf);
  w.PutU32(0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerializeTest, ReaderOverrunFails) {
  std::vector<uint8_t> buf(2);
  Reader r(buf);
  r.GetU32();
  EXPECT_FALSE(r.Ok());
  EXPECT_FALSE(r.ToStatus("test").ok());
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(FaultChannelTest, ZeroProfileNeverFaults) {
  SimClock clock;
  FaultInjector inj(&clock, 42);
  FaultChannel* c = inj.Channel("disk.d0");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(c->Decide(FaultOp::kRead, i * 4096, 4096), FaultOutcome::kNone);
    EXPECT_EQ(c->Decide(FaultOp::kWrite, i * 4096, 4096), FaultOutcome::kNone);
  }
  EXPECT_EQ(inj.stats().transients, 0u);
}

TEST(FaultChannelTest, FailNextOpsCountsDown) {
  SimClock clock;
  FaultInjector inj(&clock, 42);
  FaultChannel* c = inj.Channel("disk.d0");
  c->FailNextOps(2);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kTransient);
  EXPECT_EQ(c->Decide(FaultOp::kWrite, 0, 16), FaultOutcome::kTransient);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kNone);
  EXPECT_EQ(inj.stats().transients, 2u);
}

TEST(FaultChannelTest, WindowAndKillSwitch) {
  SimClock clock;
  FaultInjector inj(&clock, 42);
  FaultChannel* c = inj.Channel("jukebox.j0");
  c->FailBetween(100, 200);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kNone);
  clock.Advance(150);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kTransient);
  clock.Advance(100);  // Past the window.
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kNone);
  c->KillAt(clock.Now() + 50);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kNone);
  clock.Advance(50);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 16), FaultOutcome::kDeviceDown);
  EXPECT_EQ(c->Decide(FaultOp::kWrite, 0, 16), FaultOutcome::kDeviceDown);
  EXPECT_TRUE(c->dead());
}

TEST(FaultChannelTest, LatentErrorsHitReadsUntilOverwritten) {
  SimClock clock;
  FaultInjector inj(&clock, 42);
  FaultChannel* c = inj.Channel("volume.v0");
  c->AddLatentError(1000, 100);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 1000), FaultOutcome::kNone);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 1050, 16), FaultOutcome::kMediaError);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 0, 4096), FaultOutcome::kMediaError);
  // A write covering the extent remaps the bad sectors.
  c->NoteWrite(900, 400);
  EXPECT_EQ(c->LatentErrorCount(), 0u);
  EXPECT_EQ(c->Decide(FaultOp::kRead, 1050, 16), FaultOutcome::kNone);
}

TEST(FaultChannelTest, ProbabilisticFaultsAreSeedDeterministic) {
  auto roll = [](uint64_t seed) {
    SimClock clock;
    FaultInjector inj(&clock, seed);
    FaultChannel* c = inj.Channel("disk.d0");
    FaultProfile p;
    p.read_transient_p = 0.3;
    c->set_profile(p);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(c->Decide(FaultOp::kRead, 0, 16) !=
                         FaultOutcome::kNone);
    }
    return outcomes;
  };
  EXPECT_EQ(roll(7), roll(7));
  EXPECT_NE(roll(7), roll(8));
}

TEST(FaultChannelTest, ChannelStreamsIndependentOfCreationOrder) {
  SimClock clock;
  FaultProfile p;
  p.read_transient_p = 0.5;
  auto sample = [&](FaultChannel* c) {
    std::vector<bool> v;
    for (int i = 0; i < 32; ++i) {
      v.push_back(c->Decide(FaultOp::kRead, 0, 16) != FaultOutcome::kNone);
    }
    return v;
  };
  FaultInjector a(&clock, 9);
  a.Channel("disk.d0")->set_profile(p);
  a.Channel("disk.d1")->set_profile(p);
  FaultInjector b(&clock, 9);
  b.Channel("disk.d1")->set_profile(p);
  b.Channel("disk.d0")->set_profile(p);
  EXPECT_EQ(sample(a.Channel("disk.d0")), sample(b.Channel("disk.d0")));
  EXPECT_EQ(sample(a.Channel("disk.d1")), sample(b.Channel("disk.d1")));
}

TEST(RetryPolicyTest, BackoffGrowsAndSaturates) {
  RetryPolicy p;
  p.backoff_us = 1000;
  p.backoff_multiplier = 4.0;
  p.max_backoff_us = 10'000;
  EXPECT_EQ(p.BackoffFor(1), 1000u);
  EXPECT_EQ(p.BackoffFor(2), 4000u);
  EXPECT_EQ(p.BackoffFor(3), 10'000u);  // Capped.
  EXPECT_EQ(p.BackoffFor(10), 10'000u);
}

TEST(RetryPolicyTest, SeededJitterIsDeterministicAndOnlyShortens) {
  RetryPolicy plain;
  plain.backoff_us = 1000;
  plain.backoff_multiplier = 4.0;
  plain.max_backoff_us = 10'000;

  RetryPolicy jittered = plain;
  jittered.jitter = 0.5;
  jittered.jitter_seed = 0xABCDEF;
  RetryPolicy same_seed = jittered;
  RetryPolicy other_seed = jittered;
  other_seed.jitter_seed = 0x123456;

  bool any_differs = false;
  for (int retry = 1; retry <= 8; ++retry) {
    const SimTime base = plain.BackoffFor(retry);
    const SimTime j = jittered.BackoffFor(retry);
    // Jitter only shortens, never lengthens, and stays within the factor.
    EXPECT_LE(j, base);
    EXPECT_GE(j, base / 2);
    // Same seed, same schedule — bit for bit.
    EXPECT_EQ(j, same_seed.BackoffFor(retry));
    any_differs |= (other_seed.BackoffFor(retry) != j);
  }
  // Different seeds de-phase the ladder somewhere.
  EXPECT_TRUE(any_differs);
}

TEST(RetryPolicyTest, ZeroJitterIsBitIdenticalToLegacySchedule) {
  RetryPolicy legacy;
  RetryPolicy extended;
  extended.jitter = 0.0;
  extended.jitter_seed = 77;  // Ignored while jitter is 0.
  for (int retry = 0; retry <= 10; ++retry) {
    EXPECT_EQ(extended.BackoffFor(retry), legacy.BackoffFor(retry));
  }
}

TEST(RetryPolicyTest, CumulativeCapBoundsTotalStall) {
  RetryPolicy p;
  p.backoff_us = 1000;
  p.backoff_multiplier = 4.0;
  p.max_backoff_us = 100'000;
  p.max_total_backoff_us = 6000;
  // Uncapped schedule would be 1000, 4000, 16000, ... The cumulative cap
  // clips the third retry to the leftover budget and zeroes the rest.
  EXPECT_EQ(p.BackoffFor(1), 1000u);
  EXPECT_EQ(p.BackoffFor(2), 4000u);
  EXPECT_EQ(p.BackoffFor(3), 1000u);
  EXPECT_EQ(p.BackoffFor(4), 0u);
  EXPECT_EQ(p.TotalBackoffThrough(10), 6000u);
}

TEST(HealthRegistryTest, FailuresEscalateAndSuccessesHeal) {
  HealthPolicy policy;
  policy.suspect_after = 2;
  policy.quarantine_after = 4;
  policy.heal_after = 2;
  HealthRegistry health(policy);

  EXPECT_EQ(health.VolumeState(0), HealthState::kHealthy);
  health.RecordVolumeFailure(0);
  EXPECT_EQ(health.VolumeState(0), HealthState::kHealthy);
  health.RecordVolumeFailure(0);
  EXPECT_EQ(health.VolumeState(0), HealthState::kSuspect);

  // Consecutive successes heal a suspect back to healthy.
  health.RecordVolumeSuccess(0);
  health.RecordVolumeSuccess(0);
  EXPECT_EQ(health.VolumeState(0), HealthState::kHealthy);

  // Enough consecutive failures quarantine, and quarantine is sticky.
  for (int i = 0; i < policy.quarantine_after; ++i) {
    health.RecordVolumeFailure(0);
  }
  EXPECT_EQ(health.VolumeState(0), HealthState::kQuarantined);
  EXPECT_EQ(health.QuarantinedVolumes().count(0), 1u);
  for (int i = 0; i < 10; ++i) {
    health.RecordVolumeSuccess(0);
  }
  EXPECT_EQ(health.VolumeState(0), HealthState::kQuarantined);

  // Only an explicit reinstate clears it.
  health.ReinstateVolume(0);
  EXPECT_EQ(health.VolumeState(0), HealthState::kHealthy);
  EXPECT_TRUE(health.QuarantinedVolumes().empty());
  EXPECT_EQ(health.stats().quarantines, 1u);
  EXPECT_EQ(health.stats().reinstatements, 1u);
}

TEST(HealthRegistryTest, SuccessResetsTheFailureStreak) {
  HealthPolicy policy;
  policy.suspect_after = 2;
  policy.quarantine_after = 3;
  HealthRegistry health(policy);
  for (int i = 0; i < 10; ++i) {
    health.RecordVolumeFailure(1);
    health.RecordVolumeSuccess(1);
  }
  // Alternating failures never build a streak: still healthy.
  EXPECT_EQ(health.VolumeState(1), HealthState::kHealthy);
  EXPECT_TRUE(health.QuarantinedVolumes().empty());
}

}  // namespace
}  // namespace hl
