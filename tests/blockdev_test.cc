// Tests for SimDisk and the concatenation pseudo-driver.

#include <gtest/gtest.h>

#include <numeric>

#include "blockdev/concat_driver.h"
#include "blockdev/sim_disk.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

class SimDiskTest : public ::testing::Test {
 protected:
  SimClock clock_;
  SimDisk disk_{"d0", 1024, Rz57Profile(), &clock_};
};

TEST_F(SimDiskTest, RoundTripsData) {
  auto data = Pattern(kBlockSize * 3, 1);
  ASSERT_TRUE(disk_.WriteBlocks(10, 3, data).ok());
  std::vector<uint8_t> out(kBlockSize * 3);
  ASSERT_TRUE(disk_.ReadBlocks(10, 3, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SimDiskTest, UnwrittenBlocksReadZero) {
  std::vector<uint8_t> out(kBlockSize, 0xFF);
  ASSERT_TRUE(disk_.ReadBlocks(5, 1, out).ok());
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST_F(SimDiskTest, RejectsOutOfRange) {
  std::vector<uint8_t> buf(kBlockSize);
  EXPECT_EQ(disk_.ReadBlocks(1024, 1, buf).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(disk_.ReadBlocks(1023, 2, buf).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(disk_.WriteBlocks(0, 0, {}).code(), ErrorCode::kInvalidArgument);
}

TEST_F(SimDiskTest, RejectsSizeMismatch) {
  std::vector<uint8_t> buf(kBlockSize);
  EXPECT_FALSE(disk_.ReadBlocks(0, 2, buf).ok());
}

TEST_F(SimDiskTest, AdvancesClockByTransferTime) {
  auto data = Pattern(kBlockSize * 256, 2);  // 1 MB.
  SimTime before = clock_.Now();
  ASSERT_TRUE(disk_.WriteBlocks(0, 256, data).ok());
  SimTime elapsed = clock_.Now() - before;
  // 1 MB at 993 KB/s ~= 1.03 s, plus small overhead.
  EXPECT_GT(elapsed, 1'000'000u);
  EXPECT_LT(elapsed, 1'200'000u);
}

TEST_F(SimDiskTest, SequentialFasterThanScattered) {
  auto block = Pattern(kBlockSize, 3);
  // Sequential writes.
  SimTime t0 = clock_.Now();
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(disk_.WriteBlocks(i, 1, block).ok());
  }
  SimTime seq = clock_.Now() - t0;
  // Scattered writes bounce the arm across the disk.
  t0 = clock_.Now();
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(disk_.WriteBlocks((i * 37) % 1024, 1, block).ok());
  }
  SimTime scattered = clock_.Now() - t0;
  EXPECT_GT(scattered, 2 * seq);
  EXPECT_GT(disk_.seeks(), 0u);
}

TEST_F(SimDiskTest, InjectedFaultSurfaces) {
  disk_.FailNextOps(1);
  std::vector<uint8_t> buf(kBlockSize);
  EXPECT_EQ(disk_.ReadBlocks(0, 1, buf).code(), ErrorCode::kIoError);
  EXPECT_TRUE(disk_.ReadBlocks(0, 1, buf).ok());  // Next op succeeds.
}

TEST_F(SimDiskTest, AsyncScheduleDoesNotAdvanceClock) {
  auto data = Pattern(kBlockSize, 4);
  Result<SimTime> end = disk_.ScheduleWriteAt(0, 0, 1, data);
  ASSERT_TRUE(end.ok());
  EXPECT_GT(*end, 0u);
  EXPECT_EQ(clock_.Now(), 0u);  // Caller decides when to wait.
}

TEST(SimDiskBusTest, SharedBusSerializes) {
  SimClock clock;
  Resource bus("scsi0");
  SimDisk a("a", 256, Rz57Profile(), &clock, &bus);
  SimDisk b("b", 256, Rz58Profile(), &clock, &bus);
  auto data = Pattern(kBlockSize * 64, 5);
  // Schedule both at t=0: the second must queue behind the first on the bus.
  Result<SimTime> end_a = a.ScheduleWriteAt(0, 0, 64, data);
  Result<SimTime> end_b = b.ScheduleWriteAt(0, 0, 64, data);
  ASSERT_TRUE(end_a.ok());
  ASSERT_TRUE(end_b.ok());
  EXPECT_GE(*end_b, *end_a);
}

TEST(ConcatDriverTest, MapsAcrossComponents) {
  SimClock clock;
  SimDisk a("a", 100, Rz57Profile(), &clock);
  SimDisk b("b", 200, Rz58Profile(), &clock);
  ConcatDriver cat("cat", {&a, &b});
  EXPECT_EQ(cat.NumBlocks(), 300u);
  EXPECT_EQ(cat.ComponentBase(1), 100u);

  // A write spanning the boundary lands in both disks.
  auto data = Pattern(kBlockSize * 4, 6);
  ASSERT_TRUE(cat.WriteBlocks(98, 4, data).ok());
  std::vector<uint8_t> out(kBlockSize * 4);
  ASSERT_TRUE(cat.ReadBlocks(98, 4, out).ok());
  EXPECT_EQ(out, data);

  // Verify the split: component b holds the tail.
  std::vector<uint8_t> tail(kBlockSize * 2);
  ASSERT_TRUE(b.ReadBlocks(0, 2, tail).ok());
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                         data.begin() + kBlockSize * 2));
}

TEST(ConcatDriverTest, RejectsBeyondEnd) {
  SimClock clock;
  SimDisk a("a", 10, Rz57Profile(), &clock);
  ConcatDriver cat("cat", {&a});
  std::vector<uint8_t> buf(kBlockSize);
  EXPECT_EQ(cat.ReadBlocks(10, 1, buf).code(), ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace hl
