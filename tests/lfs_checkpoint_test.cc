// Checkpoint- and ifile-focused tests: region alternation, ifile growth,
// pessimistic segment reservation, and roll-forward serial-chain edges.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "lfs/lfs.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class LfsCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", 16 * 1024, Rz57Profile(),
                                      &clock_);
    params_.seg_size_blocks = 64;
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params_);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  Result<CheckpointRegion> ReadRegion(uint32_t addr) {
    std::vector<uint8_t> block(kBlockSize);
    RETURN_IF_ERROR(disk_->ReadBlocks(addr, 1, block));
    return CheckpointRegion::Deserialize(block);
  }

  SimClock clock_;
  LfsParams params_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(LfsCheckpointTest, RegionsAlternateWithIncreasingSerials) {
  // Mkfs wrote checkpoint #1. Two more checkpoints must land in different
  // slots with strictly increasing serials.
  ASSERT_TRUE(fs_->Checkpoint().ok());
  Result<CheckpointRegion> a1 = ReadRegion(kCheckpointBlockA);
  Result<CheckpointRegion> b1 = ReadRegion(kCheckpointBlockB);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_NE(a1->serial, b1->serial);

  ASSERT_TRUE(fs_->Checkpoint().ok());
  Result<CheckpointRegion> a2 = ReadRegion(kCheckpointBlockA);
  Result<CheckpointRegion> b2 = ReadRegion(kCheckpointBlockB);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  // Exactly one slot changed, and the global max serial advanced.
  uint64_t max1 = std::max(a1->serial, b1->serial);
  uint64_t max2 = std::max(a2->serial, b2->serial);
  EXPECT_EQ(max2, max1 + 1);
}

TEST_F(LfsCheckpointTest, MountUsesNewerRegion) {
  Result<uint32_t> ino = fs_->Create("/marker-old");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  ASSERT_TRUE(fs_->Create("/marker-new").ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();
  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  ASSERT_TRUE(fs.ok());
  // Both markers visible: the newer checkpoint was chosen.
  EXPECT_TRUE((*fs)->LookupPath("/marker-old").ok());
  EXPECT_TRUE((*fs)->LookupPath("/marker-new").ok());
}

TEST_F(LfsCheckpointTest, IfileGrowsWithInodePopulation) {
  LfsParams params;
  params.seg_size_blocks = 64;
  params.initial_max_inodes = 16;
  SimDisk disk2("d2", 16 * 1024, Rz57Profile(), &clock_);
  auto fs = Lfs::Mkfs(&disk2, &clock_, params);
  ASSERT_TRUE(fs.ok());
  uint64_t ifile_size_before = (*fs)->Stat(kIfileInode)->size;
  // Exceed the initial inode-map capacity several times over.
  for (int i = 0; i < 800; ++i) {
    Result<uint32_t> ino = (*fs)->Create("/n" + std::to_string(i));
    ASSERT_TRUE(ino.ok()) << i;
  }
  ASSERT_TRUE((*fs)->Checkpoint().ok());
  EXPECT_GT((*fs)->Stat(kIfileInode)->size, ifile_size_before);
  EXPECT_GE((*fs)->superblock().max_inodes, 800u);

  // Everything survives a remount with the grown map.
  fs->reset();
  auto remounted = Lfs::Mount(&disk2, &clock_, LfsParams{});
  ASSERT_TRUE(remounted.ok());
  for (int i = 0; i < 800; i += 97) {
    EXPECT_TRUE((*remounted)->LookupPath("/n" + std::to_string(i)).ok());
  }
}

TEST_F(LfsCheckpointTest, CrashDuringHeavyWritesNeverLosesCheckpointedData) {
  // Alternate big writes and checkpoints; crash after every phase and make
  // sure the checkpointed prefix always survives intact.
  std::map<std::string, uint64_t> durable;  // path -> seed.
  for (int round = 0; round < 4; ++round) {
    std::string path = "/r" + std::to_string(round);
    Result<uint32_t> ino = fs_->Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(3 << 20, round)).ok());
    ASSERT_TRUE(fs_->Checkpoint().ok());
    durable[path] = round;
    // Post-checkpoint writes that will be LOST (no sync).
    Result<uint32_t> volatile_ino = fs_->Create(path + "-volatile");
    ASSERT_TRUE(volatile_ino.ok());
    // Keep it small so no auto-flush pushes it out.
    ASSERT_TRUE(fs_->Write(*volatile_ino, 0, Pattern(10000, 99)).ok());

    fs_.reset();
    auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
    ASSERT_TRUE(fs.ok()) << "round " << round;
    fs_ = std::move(*fs);
    for (const auto& [p, seed] : durable) {
      Result<uint32_t> found = fs_->LookupPath(p);
      ASSERT_TRUE(found.ok()) << p;
      std::vector<uint8_t> out(3 << 20);
      ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
      ASSERT_EQ(out, Pattern(3 << 20, seed)) << p;
    }
  }
}

TEST_F(LfsCheckpointTest, CheckpointAfterFailedFlushStillConsistent) {
  Result<uint32_t> ino = fs_->Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(100 * 1024, 1)).ok());
  disk_->FailNextOps(1);
  EXPECT_FALSE(fs_->Sync().ok());  // Injected failure.
  // The next checkpoint succeeds and the data are durable.
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();
  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  ASSERT_TRUE(fs.ok());
  Result<uint32_t> found = (*fs)->LookupPath("/f");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(100 * 1024);
  ASSERT_TRUE((*fs)->Read(*found, 0, out).ok());
  EXPECT_EQ(out, Pattern(100 * 1024, 1));
}

}  // namespace
}  // namespace hl
