// System-level integration tests: multi-jukebox Footprint deployments,
// shared-bus configurations, WORM archives, and a long mixed-workload
// scenario combining every mechanism.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

JukeboxProfile SmallMo(int slots, uint32_t segs, uint32_t spb) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = slots;
  j.volume_capacity_bytes = static_cast<uint64_t>(segs) * spb * kBlockSize;
  return j;
}

TEST(MultiJukeboxTest, VolumesSpanTwoChangers) {
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 8 * 1024});
  // Two changers, 4 volumes each, uniform 12 segments per volume.
  config.jukeboxes.push_back({SmallMo(4, 12, 64), false, 12});
  config.jukeboxes.push_back({SmallMo(4, 12, 64), false, 12});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = 8;
  auto hl = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(hl.ok()) << hl.status().ToString();
  EXPECT_EQ((*hl)->Internals().footprint.NumVolumes(), 8);
  EXPECT_EQ((*hl)->Internals().address_map.num_volumes(), 8u);
  EXPECT_EQ((*hl)->Internals().address_map.tertiary_nsegs(), 96u);

  // Migrate enough data to spill past the first changer's volumes.
  // Volume order consumes volume 0 (changer 0) first; filling >4 volumes
  // of 3 MB each reaches changer 1.
  for (int i = 0; i < 16; ++i) {
    std::string path = "/f" + std::to_string(i);
    Result<uint32_t> ino = (*hl)->fs().Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*hl)->fs().Write(*ino, 0, Pattern(1 << 20, i)).ok());
    ASSERT_TRUE((*hl)->Migrate(MigrationRequest{.path = path}).ok());
  }
  EXPECT_GT((*hl)->Internals().jukebox(0).bytes_written(), 0u);
  EXPECT_GT((*hl)->Internals().jukebox(1).bytes_written(), 0u);

  // Everything reads back, cold.
  ASSERT_TRUE((*hl)->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(1 << 20);
  for (int i = 0; i < 16; i += 5) {
    Result<uint32_t> ino = (*hl)->fs().LookupPath("/f" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*hl)->fs().Read(*ino, 0, out).ok());
    EXPECT_EQ(out, Pattern(1 << 20, i)) << i;
  }
}

TEST(MultiJukeboxTest, MismatchedSegsPerVolumeRejected) {
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 8 * 1024});
  config.jukeboxes.push_back({SmallMo(4, 12, 64), false, 12});
  config.jukeboxes.push_back({SmallMo(4, 12, 64), false, 10});
  config.lfs.seg_size_blocks = 64;
  auto hl = HighLightFs::Create(config, &clock);
  EXPECT_FALSE(hl.ok());
  EXPECT_EQ(hl.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SharedBusTest, SwapStallsDiskTraffic) {
  // The paper's testbed caveat: the autochanger hogs the SCSI bus during a
  // swap, so concurrent disk I/O waits.
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 8 * 1024});
  config.jukeboxes.push_back({SmallMo(4, 12, 64), false, 12});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = 6;
  config.shared_bus = true;
  auto hl = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(hl.ok());
  Result<uint32_t> ino = (*hl)->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE((*hl)->fs().Write(*ino, 0, Pattern(256 * 1024, 1)).ok());
  // Migration (first tertiary write) mounts a volume: 13.5 s swap holds the
  // bus, so the whole operation takes at least that long.
  SimTime t0 = clock.Now();
  ASSERT_TRUE((*hl)->Migrate(MigrationRequest{.path = "/f"}).ok());
  EXPECT_GT(clock.Now() - t0, 13'000'000u);
}

TEST(WormArchiveTest, WriteOnceArchiveLifecycle) {
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 8 * 1024});
  JukeboxProfile sony = SmallMo(4, 12, 64);
  sony.name = "Sony-WORM";
  config.jukeboxes.push_back({sony, /*write_once=*/true, 12});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = 8;
  auto hl = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(hl.ok());

  // Archive files; WORM media accept each segment exactly once.
  for (int i = 0; i < 4; ++i) {
    std::string path = "/archive" + std::to_string(i);
    Result<uint32_t> ino = (*hl)->fs().Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*hl)->fs().Write(*ino, 0, Pattern(512 * 1024, 20 + i)).ok());
    Result<MigrationReport> r = (*hl)->Migrate(MigrationRequest{.path = path});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE((*hl)->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(512 * 1024);
  for (int i = 0; i < 4; ++i) {
    Result<uint32_t> ino =
        (*hl)->fs().LookupPath("/archive" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*hl)->fs().Read(*ino, 0, out).ok());
    EXPECT_EQ(out, Pattern(512 * 1024, 20 + i));
  }
  // Updates still work: they supersede on disk, never rewriting the WORM.
  Result<uint32_t> ino = (*hl)->fs().LookupPath("/archive0");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE((*hl)->fs().Write(*ino, 0, Pattern(4096, 99)).ok());
  ASSERT_TRUE((*hl)->fs().Sync().ok());
  ASSERT_TRUE((*hl)->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.begin() + 4096),
            Pattern(4096, 99));
}

TEST(GrandIntegrationTest, EverythingTogether) {
  // Ingest -> migrate (with replicas) -> demand fetch -> update -> clean
  // disk -> clean tertiary -> crash -> verify. One pass through every
  // mechanism in the system.
  SimClock clock;
  HighLightConfig config;
  config.disks.push_back({Rz57Profile(), 12 * 1024});
  config.jukeboxes.push_back({SmallMo(6, 16, 64), false, 16});
  config.lfs.seg_size_blocks = 64;
  config.lfs.cache_max_segments = 10;
  auto hl_or = HighLightFs::Create(config, &clock);
  ASSERT_TRUE(hl_or.ok());
  std::unique_ptr<HighLightFs> hl = std::move(*hl_or);

  // Ingest a tree.
  ASSERT_TRUE(hl->fs().Mkdir("/data").ok());
  std::map<std::string, uint64_t> files;  // path -> seed.
  for (int i = 0; i < 10; ++i) {
    std::string path = "/data/f" + std::to_string(i);
    Result<uint32_t> ino = hl->fs().Create(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(hl->fs().Write(*ino, 0, Pattern(400 * 1024, 50 + i)).ok());
    files[path] = 50 + i;
  }
  clock.Advance(3600 * kUsPerSec);

  // Migrate with one replica per segment.
  MigratorOptions opts;
  opts.replicas = 1;
  std::vector<uint32_t> inos;
  for (const auto& [path, seed] : files) {
    inos.push_back(*hl->fs().LookupPath(path));
  }
  ASSERT_TRUE(hl->Internals().migrator.MigrateFiles(inos, opts).ok());

  // Demand-fetch some files back; update others (supersede on disk).
  ASSERT_TRUE(hl->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(400 * 1024);
  for (int i = 0; i < 10; i += 3) {
    std::string path = "/data/f" + std::to_string(i);
    Result<uint32_t> ino = hl->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(hl->fs().Read(*ino, 0, out).ok());
    EXPECT_EQ(out, Pattern(400 * 1024, files[path]));
  }
  for (int i = 1; i < 10; i += 3) {
    std::string path = "/data/f" + std::to_string(i);
    Result<uint32_t> ino = hl->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(hl->fs().Write(*ino, 0, Pattern(400 * 1024, 80 + i)).ok());
    files[path] = 80 + i;
  }
  ASSERT_TRUE(hl->fs().Sync().ok());

  // Disk cleaner pass, then tertiary cleaner on the now-dirty volume 0.
  ASSERT_TRUE(hl->Internals().cleaner.Clean(8).ok());
  ASSERT_TRUE(hl->Internals().tertiary_cleaner.CleanWorstVolume(0.95).ok());

  // Crash + remount, then verify every file cold.
  ASSERT_TRUE(hl->fs().Checkpoint().ok());
  ASSERT_TRUE(hl->Remount().ok());
  ASSERT_TRUE(hl->DropCleanCacheLines().ok());
  for (const auto& [path, seed] : files) {
    Result<uint32_t> ino = hl->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok()) << path;
    ASSERT_TRUE(hl->fs().Read(*ino, 0, out).ok()) << path;
    EXPECT_EQ(out, Pattern(400 * 1024, seed)) << path;
  }
  FsckReport report = CheckFs(hl->fs());
  EXPECT_TRUE(report.clean()) << (report.errors.empty() ? ""
                                                        : report.errors[0]);
}

}  // namespace
}  // namespace hl
