// Tests for the simulation clock, resources, and device profiles.

#include <gtest/gtest.h>

#include "sim/device_profile.h"
#include "sim/sim_clock.h"

namespace hl {
namespace {

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150u);
}

TEST(SimClockTest, AdvanceToNeverGoesBack) {
  SimClock clock;
  clock.AdvanceTo(1000);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 1000u);
}

TEST(ResourceTest, SerializesOperations) {
  Resource r("disk");
  // Two ops requested at t=0: the second starts when the first finishes.
  EXPECT_EQ(r.Schedule(0, 100), 100u);
  EXPECT_EQ(r.Schedule(0, 50), 150u);
  // An op requested after the resource is free starts immediately.
  EXPECT_EQ(r.Schedule(1000, 10), 1010u);
  EXPECT_EQ(r.busy_total(), 160u);
}

TEST(ResourceTest, ScheduleWithHoldsBothResources) {
  Resource robot("robot");
  Resource bus("bus");
  bus.Schedule(0, 500);  // Bus busy until 500.
  // A bus-hogging swap requested at t=0 cannot start before the bus frees.
  EXPECT_EQ(robot.ScheduleWith(bus, 0, 100), 600u);
  EXPECT_EQ(bus.free_at(), 600u);
}

TEST(PhaseAccumulatorTest, PercentagesSumTo100) {
  PhaseAccumulator acc;
  acc.Add("footprint", 620);
  acc.Add("ioserver", 370);
  acc.Add("queue", 10);
  EXPECT_EQ(acc.GrandTotal(), 1000u);
  EXPECT_DOUBLE_EQ(acc.Percent("footprint"), 62.0);
  EXPECT_DOUBLE_EQ(acc.Percent("queue"), 1.0);
}

TEST(PhaseAccumulatorTest, InternedHandlesMatchStringPathAndSurviveReset) {
  PhaseAccumulator acc;
  const PhaseAccumulator::PhaseId io = acc.Intern("ioserver");
  // Interning is idempotent and agrees with the string Add path.
  EXPECT_EQ(acc.Intern("ioserver"), io);
  acc.Add(io, 30);
  acc.Add("ioserver", 70);
  acc.Add("queuing", 100);
  EXPECT_EQ(acc.Total(io), 100u);
  EXPECT_EQ(acc.Total("ioserver"), 100u);
  // The grand total is maintained incrementally, not recomputed.
  EXPECT_EQ(acc.GrandTotal(), 200u);
  EXPECT_DOUBLE_EQ(acc.Percent("ioserver"), 50.0);

  // The materialized view iterates name-sorted like the old std::map.
  const std::map<std::string, SimTime> totals = acc.totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.begin()->first, "ioserver");
  EXPECT_EQ(totals.rbegin()->first, "queuing");

  // Reset zeroes totals but keeps handles valid for reuse.
  acc.Reset();
  EXPECT_EQ(acc.GrandTotal(), 0u);
  EXPECT_DOUBLE_EQ(acc.Percent("ioserver"), 0.0);
  acc.Add(io, 5);
  EXPECT_EQ(acc.Total("ioserver"), 5u);
  EXPECT_EQ(acc.GrandTotal(), 5u);
}

TEST(DiskProfileTest, SeekMonotoneInDistance) {
  DiskProfile p = Rz57Profile();
  EXPECT_EQ(p.SeekTime(0), 0u);
  SimTime near = p.SeekTime(1 << 20);
  SimTime far = p.SeekTime(500u << 20);
  EXPECT_GT(near, 0u);
  EXPECT_GT(far, near);
  EXPECT_LE(far, p.full_stroke_us);
}

TEST(DiskProfileTest, TransferMatchesTable5Rates) {
  DiskProfile p = Rz57Profile();
  // 1 MB at 1417 KB/s is about 0.72 s.
  SimTime t = p.TransferTime(1024 * 1024, /*is_write=*/false);
  EXPECT_NEAR(static_cast<double>(t) / kUsPerSec, 1024.0 / 1417.0, 0.01);
  // Writes are slower than reads on the RZ57.
  EXPECT_GT(p.TransferTime(1 << 20, true), p.TransferTime(1 << 20, false));
}

TEST(DeviceProfileTest, MoMatchesPaperRates) {
  JukeboxProfile j = Hp6300MoProfile();
  EXPECT_EQ(j.drive.read_bytes_per_sec, 451u * 1024);
  EXPECT_EQ(j.drive.write_bytes_per_sec, 204u * 1024);
  EXPECT_EQ(j.media_swap_us, 13'500'000u);
  EXPECT_EQ(j.num_drives, 2);
  EXPECT_EQ(j.num_slots, 32);
}

TEST(DeviceProfileTest, TapeSeekGrowsWithDistance) {
  JukeboxProfile j = MetrumRss600Profile();
  SimTime near = j.drive.SeekTime(1 << 20);
  SimTime far = j.drive.SeekTime(1000ull << 20);
  EXPECT_GT(far, near);
}

}  // namespace
}  // namespace hl
