// Write-behind I/O server pipeline and staging-durability tests: queue
// backpressure, Drain() volume batching, end-of-medium surfacing at
// completion time, replica failover, and a remount mid-delayed-copyout
// (the staging line is the only copy of its data and must survive).

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

JukeboxProfile SmallJukebox(int slots, uint64_t volume_bytes) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = slots;
  j.volume_capacity_bytes = volume_bytes;
  return j;
}

class WriteBehindTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(MigratorOptions{}); }

  void Build(const MigratorOptions& opts, bool readahead = false) {
    hl_.reset();
    clock_ = SimClock();
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});  // 64 MB.
    // 4 volumes x 20 segments of 256 KB = 5 MB per volume.
    config.jukeboxes.push_back(
        {SmallJukebox(4, 20ull * 64 * kBlockSize), false, 20});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.migrator = opts;
    config.sequential_readahead = readahead;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  uint32_t MakeFile(const std::string& path, size_t bytes, uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().Create(path);
    EXPECT_TRUE(ino.ok()) << ino.status().ToString();
    EXPECT_TRUE(hl_->fs().Write(*ino, 0, Pattern(bytes, seed)).ok());
    return *ino;
  }

  void ExpectFileContents(const std::string& path, size_t bytes,
                          uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok()) << path;
    std::vector<uint8_t> out(bytes);
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, bytes);
    EXPECT_EQ(out, Pattern(bytes, seed)) << path << " contents differ";
  }

  void ExpectFsckClean() {
    FsckReport report = CheckFs(hl_->fs());
    EXPECT_TRUE(report.clean())
        << (report.errors.empty() ? "" : report.errors[0]);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(WriteBehindTest, StagingLineSurvivesRemountMidDelayedCopyout) {
  uint32_t ino = MakeFile("/interrupted", 200 * 1024, 7);
  MigratorOptions delayed;
  delayed.delayed_copyout = true;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({ino}, delayed).ok());
  ASSERT_GT(hl_->Internals().migrator.PendingSegments(), 0u);
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());

  // Crash + remount before the copy-out: the staging line holds the ONLY
  // copy of the migrated blocks.
  ASSERT_TRUE(hl_->Remount().ok());

  bool found_staging = false;
  for (const SegmentCache::LineInfo& line : hl_->Internals().cache.Lines()) {
    if (line.staging) {
      found_staging = true;
      EXPECT_TRUE(line.dirty) << "staging line came back unpinned";
    }
  }
  EXPECT_TRUE(found_staging)
      << "SegmentCache::Init dropped the kSegStaging flag";
  // The migrator recovered the interrupted staging ledger...
  EXPECT_GT(hl_->Internals().migrator.PendingSegments(), 0u);
  // ...the data are still readable (served from the staging line)...
  ExpectFileContents("/interrupted", 200 * 1024, 7);
  // ...and the flush completes the migration cleanly.
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/interrupted", 200 * 1024, 7);
  ExpectFsckClean();
}

TEST_F(WriteBehindTest, ReplicaFailoverStillPlacesRequestedCount) {
  uint32_t ino = MakeFile("/replicated", 200 * 1024, 8);
  // Volume 1 (the natural first replica target) cannot take a single byte.
  Result<Volume*> bad = hl_->Internals().footprint.GetVolume(1);
  ASSERT_TRUE(bad.ok());
  (*bad)->SetActualCapacity(0);

  MigratorOptions opts;
  opts.replicas = 2;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({ino}, opts).ok());

  uint32_t primary = hl_->Internals().address_map.FirstTsegOfVolume(0);
  std::vector<uint32_t> replicas = hl_->Internals().tseg_table.ReplicasOf(primary);
  ASSERT_EQ(replicas.size(), 2u)
      << "failed volume must not cost the remaining replica copies";
  for (uint32_t r : replicas) {
    EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(r), 1u)
        << "replica landed on the full volume";
  }
  // End-of-medium on the replica path retired the bad volume like the
  // primary path would have.
  uint32_t v1_first = hl_->Internals().address_map.FirstTsegOfVolume(1);
  EXPECT_EQ(hl_->Internals().tseg_table.Get(v1_first).avail_bytes, 0u);
  ExpectFileContents("/replicated", 200 * 1024, 8);
  ExpectFsckClean();
}

TEST_F(WriteBehindTest, BackpressureBoundsTheQueue) {
  MigratorOptions wb;
  wb.write_behind = true;
  Build(wb);
  hl_->Internals().io_server.set_max_queue_depth(2);
  MakeFile("/big", 1536 * 1024, 9);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/big"}).ok());

  const IoServer::Stats& s = hl_->Internals().io_server.stats();
  EXPECT_GT(s.ops_enqueued, 0u);
  EXPECT_GT(s.backpressure_stalls, 0u)
      << "a deep migration must hit the queue bound";
  // Enqueue admits one op past the bound before stalling the caller.
  EXPECT_LE(s.queue_depth.max(), 3);
  EXPECT_LE(hl_->Internals().io_server.QueueDepth(), 2u);
  // The registry sees the same pipeline activity: a stalled enqueue accrues
  // wait time, and completed copy-outs count against the io.* slots.
  MetricsSnapshot snap = hl_->Metrics();
  EXPECT_GT(snap.Value("io.queue_stall_us"), 0u)
      << "backpressure stalls must accrue queue-stall time";
  EXPECT_GT(snap.Value("io.ops_enqueued"), 0u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kQueueStall), 0u);

  // The barrier empties the pipeline and unpins every staged line.
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_GT(hl_->Metrics().Value("io.segments_copied_out"), 0u)
      << "drained copy-outs must move the registry counter";
  EXPECT_EQ(hl_->Internals().io_server.QueueDepth(), 0u);
  EXPECT_EQ(hl_->Internals().io_server.Outstanding(), 0u);
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/big", 1536 * 1024, 9);
  ExpectFsckClean();
}

TEST_F(WriteBehindTest, DrainBatchesQueuedOpsByMountedVolume) {
  // Stage four segments, two per volume, enqueued in alternating volume
  // order. With batching, the pipeline still needs only one media swap per
  // volume; strict FIFO would pay four.
  MigratorOptions delayed;
  delayed.delayed_copyout = true;
  Build(delayed);
  uint32_t a1 = MakeFile("/a1", 200 * 1024, 11);
  uint32_t a2 = MakeFile("/a2", 200 * 1024, 12);
  uint32_t b1 = MakeFile("/b1", 200 * 1024, 13);
  uint32_t b2 = MakeFile("/b2", 200 * 1024, 14);

  MigratorOptions v0 = delayed;
  v0.preferred_volume = 0;
  MigratorOptions v1 = delayed;
  v1.preferred_volume = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({a1}, v0).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({b1}, v1).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({a2}, v0).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({b2}, v1).ok());
  ASSERT_EQ(hl_->Internals().migrator.PendingSegments(), 4u);

  uint32_t vol0_first = hl_->Internals().address_map.FirstTsegOfVolume(0);
  uint32_t vol1_first = hl_->Internals().address_map.FirstTsegOfVolume(1);
  uint64_t swaps_before = hl_->Internals().footprint.TotalMediaSwaps();

  // Tight window so ops actually accumulate in the pending queue.
  hl_->Internals().io_server.set_max_queue_depth(1);
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(vol0_first).ok());
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(vol1_first).ok());
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(vol0_first + 1).ok());
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(vol1_first + 1).ok());
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());

  EXPECT_EQ(hl_->Internals().footprint.TotalMediaSwaps() - swaps_before, 2u)
      << "volume batching should load each volume exactly once";
  EXPECT_GE(hl_->Internals().io_server.stats().volume_batch_picks, 1u);
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);

  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/a1", 200 * 1024, 11);
  ExpectFileContents("/a2", 200 * 1024, 12);
  ExpectFileContents("/b1", 200 * 1024, 13);
  ExpectFileContents("/b2", 200 * 1024, 14);
  ExpectFsckClean();
}

TEST_F(WriteBehindTest, EndOfMediumSurfacesAtCompletionAndRetargets) {
  MigratorOptions wb;
  wb.write_behind = true;
  Build(wb);
  // Volume 0 claims 20 segments but actually fits 2: the third copy-out
  // fails at completion-callback time and must re-target onto volume 1.
  Result<Volume*> v0 = hl_->Internals().footprint.GetVolume(0);
  ASSERT_TRUE(v0.ok());
  (*v0)->SetActualCapacity(2ull * 64 * kBlockSize);

  MakeFile("/overflow", 1 << 20, 15);
  ASSERT_TRUE(hl_->Migrate(MigrationRequest{.path = "/overflow"}).ok());
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());

  EXPECT_GT(hl_->Internals().migrator.lifetime_report().eom_retargets, 0u);
  EXPECT_GT(hl_->Internals().io_server.stats().end_of_medium_events, 0u);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/overflow", 1 << 20, 15);
  ExpectFsckClean();
}

TEST_F(WriteBehindTest, WriteBehindBeatsSynchronousCopyOut) {
  // Same workload, same hardware: queued copy-outs overlap tertiary writes
  // with migrator staging and must finish in less simulated time.
  auto run = [this](bool write_behind) {
    MigratorOptions opts;
    opts.write_behind = write_behind;
    Build(opts);
    MakeFile("/workload", 2 << 20, 16);
    SimTime t0 = clock_.Now();
    EXPECT_TRUE(hl_->Migrate(MigrationRequest{.path = "/workload"}).ok());
    EXPECT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
    ExpectFsckClean();
    return clock_.Now() - t0;
  };
  SimTime sync_elapsed = run(false);
  SimTime wb_elapsed = run(true);
  EXPECT_LT(wb_elapsed, sync_elapsed);
}

TEST_F(WriteBehindTest, SequentialReadaheadOverlapsTertiaryReads) {
  // A sequential scan of a tertiary-resident multi-segment file: each demand
  // fetch of tseg N schedules an asynchronous read of N+1, so the next miss
  // waits only for the in-flight remainder.
  auto scan = [this](bool readahead) {
    Build(MigratorOptions{}, readahead);
    MakeFile("/scan", 1 << 20, 21);
    EXPECT_TRUE(hl_->Migrate(MigrationRequest{.path = "/scan"}).ok());
    EXPECT_TRUE(hl_->DropCleanCacheLines().ok());
    SimTime t0 = clock_.Now();
    ExpectFileContents("/scan", 1 << 20, 21);
    return clock_.Now() - t0;
  };
  SimTime cold = scan(false);
  EXPECT_EQ(hl_->Internals().service.stats().readaheads_issued, 0u);
  SimTime overlapped = scan(true);
  EXPECT_GT(hl_->Internals().service.stats().readaheads_issued, 0u);
  EXPECT_GT(hl_->Internals().service.stats().readaheads_consumed, 0u);
  EXPECT_LT(overlapped, cold);
  ExpectFsckClean();
}

}  // namespace
}  // namespace hl
