// Cleaner tests: liveness, space reclamation, data integrity across cleaning,
// and operation under log pressure.

#include <gtest/gtest.h>

#include "blockdev/sim_disk.h"
#include "lfs/cleaner.h"
#include "lfs/lfs.h"
#include "util/rng.h"

namespace hl {
namespace {

constexpr uint32_t kTestDiskBlocks = 8 * 1024;  // 32 MB.

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class LfsCleanerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimDisk>("d0", kTestDiskBlocks, Rz57Profile(),
                                      &clock_);
    params_.seg_size_blocks = 64;  // 256 KB segments.
    auto fs = Lfs::Mkfs(disk_.get(), &clock_, params_);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  SimClock clock_;
  LfsParams params_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Lfs> fs_;
};

TEST_F(LfsCleanerTest, ReclaimsFullyDeadSegments) {
  // Fill a few segments, delete everything, clean.
  for (int i = 0; i < 4; ++i) {
    Result<uint32_t> ino = fs_->Create("/junk" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(256 * 1024, i)).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  uint32_t clean_low = fs_->CleanSegmentCount();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs_->Unlink("/junk" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());

  Cleaner cleaner(fs_.get());
  Result<uint32_t> cleaned = cleaner.Clean(16);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  EXPECT_GT(*cleaned, 0u);
  EXPECT_GT(fs_->CleanSegmentCount(), clean_low);
}

TEST_F(LfsCleanerTest, PreservesLiveDataWhenCleaningMixedSegments) {
  // Interleave two files so segments hold blocks of both, then delete one.
  Result<uint32_t> keep = fs_->Create("/keep");
  Result<uint32_t> kill = fs_->Create("/kill");
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(kill.ok());
  auto keep_data = Pattern(512 * 1024, 42);
  auto kill_data = Pattern(512 * 1024, 43);
  for (size_t off = 0; off < keep_data.size(); off += 64 * 1024) {
    ASSERT_TRUE(fs_->Write(*keep, off,
                           std::span<const uint8_t>(keep_data.data() + off,
                                                    64 * 1024))
                    .ok());
    ASSERT_TRUE(fs_->Write(*kill, off,
                           std::span<const uint8_t>(kill_data.data() + off,
                                                    64 * 1024))
                    .ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  ASSERT_TRUE(fs_->Unlink("/kill").ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());

  Cleaner cleaner(fs_.get());
  ASSERT_TRUE(cleaner.Clean(32).ok());
  EXPECT_GT(cleaner.stats().blocks_live, 0u);

  fs_->FlushBufferCache();
  std::vector<uint8_t> out(keep_data.size());
  Result<size_t> n = fs_->Read(*keep, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, keep_data) << "cleaner corrupted live data";
}

TEST_F(LfsCleanerTest, CleanedDataSurvivesRemount) {
  Result<uint32_t> keep = fs_->Create("/keep");
  ASSERT_TRUE(keep.ok());
  auto data = Pattern(256 * 1024, 44);
  ASSERT_TRUE(fs_->Write(*keep, 0, data).ok());
  // Churn: overwrite repeatedly so old segments hold dead versions.
  for (int round = 0; round < 6; ++round) {
    data = Pattern(256 * 1024, 45 + round);
    ASSERT_TRUE(fs_->Write(*keep, 0, data).ok());
    ASSERT_TRUE(fs_->Sync().ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  Cleaner cleaner(fs_.get());
  ASSERT_TRUE(cleaner.Clean(32).ok());

  fs_.reset();
  auto fs = Lfs::Mount(disk_.get(), &clock_, params_);
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(*fs);

  Result<uint32_t> found = fs_->LookupPath("/keep");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LfsCleanerTest, LogSurvivesFillDeleteCycles) {
  // Work the log through several fill/delete/clean cycles to exercise wrap
  // around; the no-space handler runs the cleaner on demand.
  Cleaner cleaner(fs_.get(), CleanerPolicy::kGreedy);
  fs_->SetNoSpaceHandler([&]() {
    Result<uint32_t> done = cleaner.Clean(8);
    return done.ok() && *done > 0;
  });
  for (int cycle = 0; cycle < 6; ++cycle) {
    std::string path = "/cycle" + std::to_string(cycle);
    Result<uint32_t> ino = fs_->Create(path);
    ASSERT_TRUE(ino.ok()) << path << ": " << ino.status().ToString();
    // ~8 MB on a 32 MB disk each cycle.
    Status w = fs_->Write(*ino, 0, Pattern(8 << 20, 50 + cycle));
    ASSERT_TRUE(w.ok()) << "cycle " << cycle << ": " << w.ToString();
    ASSERT_TRUE(fs_->Checkpoint().ok());
    // Verify, then delete to create garbage.
    std::vector<uint8_t> out(8 << 20);
    ASSERT_TRUE(fs_->Read(*ino, 0, out).ok());
    EXPECT_EQ(out, Pattern(8 << 20, 50 + cycle));
    ASSERT_TRUE(fs_->Unlink(path).ok());
    ASSERT_TRUE(fs_->Checkpoint().ok());
  }
}

TEST_F(LfsCleanerTest, CostBenefitPrefersOldColdSegments) {
  // Build two dirty segments: one mostly dead, one mostly live; cost-benefit
  // must clean the mostly-dead one first.
  Result<uint32_t> a = fs_->Create("/a");
  Result<uint32_t> b = fs_->Create("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs_->Write(*a, 0, Pattern(256 * 1024, 1)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Write(*b, 0, Pattern(256 * 1024, 2)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  // Kill most of /a: its segments become mostly dead.
  ASSERT_TRUE(fs_->Truncate(*a, 16 * 1024).ok());
  ASSERT_TRUE(fs_->Checkpoint().ok());

  Cleaner cleaner(fs_.get(), CleanerPolicy::kCostBenefit);
  ASSERT_TRUE(cleaner.Clean(1).ok());
  EXPECT_EQ(cleaner.stats().segments_cleaned, 1u);
  // The cleaned segment carried few live blocks relative to a full segment.
  EXPECT_LT(cleaner.stats().blocks_live, 32u);
}

TEST_F(LfsCleanerTest, InodesRelocatedWhenSegmentCleaned) {
  // Create files, checkpoint (inodes land in a segment), make the segment
  // mostly dead, clean it, and make sure files are still reachable.
  std::vector<uint32_t> inos;
  for (int i = 0; i < 20; ++i) {
    Result<uint32_t> ino = fs_->Create("/n" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_->Write(*ino, 0, Pattern(16 * 1024, 60 + i)).ok());
    inos.push_back(*ino);
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  // Delete half the files; their segments hold a mix of dead data and the
  // still-live inodes of the others.
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(fs_->Unlink("/n" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  Cleaner cleaner(fs_.get());
  ASSERT_TRUE(cleaner.Clean(32).ok());

  for (int i = 1; i < 20; i += 2) {
    Result<uint32_t> found = fs_->LookupPath("/n" + std::to_string(i));
    ASSERT_TRUE(found.ok());
    std::vector<uint8_t> out(16 * 1024);
    ASSERT_TRUE(fs_->Read(*found, 0, out).ok());
    EXPECT_EQ(out, Pattern(16 * 1024, 60 + i));
  }
}

}  // namespace
}  // namespace hl
