// Cross-site replication tests: async segment shipping over a faulty WAN,
// anti-entropy rounds that resume across partitions without re-shipping
// synced segments, the durable replication ledger surviving crash+remount,
// site failover fanning a coalesced in-flight recall out to every waiter,
// and the scrubber's cross-site last-resort repair path.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "federation/site_replicator.h"
#include "federation/stager.h"
#include "highlight/highlight.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/wan_link.h"

namespace hl {
namespace {

// An in-memory SiteStore: segment images, CRC catalog, and named blobs.
class FakeSiteStore : public SiteStore {
 public:
  explicit FakeSiteStore(uint64_t seg_bytes) : seg_bytes_(seg_bytes) {}

  void AddSegment(uint32_t tseg, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint8_t> image(seg_bytes_);
    for (auto& b : image) {
      b = static_cast<uint8_t>(rng.Next());
    }
    crcs_[tseg] = Crc32(image);
    images_[tseg] = std::move(image);
  }
  void DropCrc(uint32_t tseg) { crcs_.erase(tseg); }

  uint64_t SegmentImageBytes() const override { return seg_bytes_; }
  std::vector<uint32_t> ReplicableSegments() const override {
    std::vector<uint32_t> out;
    for (const auto& [tseg, image] : images_) {
      out.push_back(tseg);
    }
    return out;
  }
  Result<std::vector<uint8_t>> ReadSegmentImage(uint32_t tseg) override {
    auto it = images_.find(tseg);
    if (it == images_.end()) {
      return NotFound("fake site: no segment");
    }
    return it->second;
  }
  Status InstallSegmentImage(uint32_t tseg,
                             std::span<const uint8_t> image) override {
    images_[tseg].assign(image.begin(), image.end());
    crcs_[tseg] = Crc32(image);
    installs++;
    return OkStatus();
  }
  bool SegmentCrc(uint32_t tseg, uint32_t* crc) const override {
    auto it = crcs_.find(tseg);
    if (it == crcs_.end()) {
      return false;
    }
    *crc = it->second;
    return true;
  }
  void StampSegmentCrc(uint32_t tseg, uint32_t crc) override {
    crcs_[tseg] = crc;
  }
  Status PersistBlob(const std::string& name,
                     std::span<const uint8_t> data) override {
    blobs_[name].assign(data.begin(), data.end());
    return OkStatus();
  }
  Result<std::vector<uint8_t>> LoadBlob(const std::string& name) override {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) {
      return NotFound("fake site: no blob");
    }
    return it->second;
  }

  int installs = 0;

 private:
  uint64_t seg_bytes_;
  std::map<uint32_t, std::vector<uint8_t>> images_;
  std::map<uint32_t, uint32_t> crcs_;
  std::map<std::string, std::vector<uint8_t>> blobs_;
};

constexpr uint64_t kSegBytes = 4096;

TEST(SiteReplicatorTest, ShipsEnqueuedSegmentsToEveryPeer) {
  SimClock clock;
  FaultInjector faults(&clock);
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  FakeSiteStore c(kSegBytes);
  a.AddSegment(0, 1);
  a.AddSegment(1, 2);

  SiteReplicator repl(&clock);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  int sc = repl.AddSite("c", &c);
  WanLink ab("a-b", &clock);
  WanLink ac("a-c", &clock);
  WanLink bc("b-c", &clock);
  ab.AttachFaults(faults.Channel("wan.a-b"));
  ac.AttachFaults(faults.Channel("wan.a-c"));
  bc.AttachFaults(faults.Channel("wan.b-c"));
  repl.SetLink(sa, sb, &ab);
  repl.SetLink(sa, sc, &ac);
  repl.SetLink(sb, sc, &bc);

  ASSERT_EQ(*repl.EnqueueNewSegments(sa), 2u);
  EXPECT_EQ(repl.QueueDepth(sa), 2u);
  clock.Advance(1000);
  EXPECT_EQ(repl.ReplicationLag(sa), 1000u);

  ASSERT_TRUE(repl.RunUntilIdle().ok());
  EXPECT_EQ(repl.QueueDepth(sa), 0u);
  EXPECT_EQ(repl.ReplicationLag(sa), 0u);
  EXPECT_EQ(b.installs, 2);
  EXPECT_EQ(c.installs, 2);
  // Delivered bytes: 2 segments x 2 peers.
  EXPECT_EQ(repl.stats().bytes_shipped, 4 * kSegBytes);
  EXPECT_EQ(repl.DivergentCountVs(sa, sb), 0u);
  EXPECT_EQ(repl.DivergentCountVs(sa, sc), 0u);
  // The ledger went durable along the way.
  EXPECT_GE(repl.Metrics().Value("site.ledger_persists"), 1u);

  // Re-running the post-migration hook re-ships nothing.
  ASSERT_EQ(*repl.EnqueueNewSegments(sa), 0u);
  ASSERT_TRUE(repl.RunUntilIdle().ok());
  EXPECT_EQ(b.installs, 2);
}

TEST(SiteReplicatorTest, BoundedQueueRejectsWithBusy) {
  SimClock clock;
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  for (uint32_t t = 0; t < 4; ++t) {
    a.AddSegment(t, t + 1);
  }
  SiteReplicatorConfig config;
  config.max_queue = 2;
  SiteReplicator repl(&clock, config);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  WanLink link("a-b", &clock);
  repl.SetLink(sa, sb, &link);

  ASSERT_TRUE(repl.EnqueueSegment(sa, 0).ok());
  ASSERT_TRUE(repl.EnqueueSegment(sa, 1).ok());
  Status overflow = repl.EnqueueSegment(sa, 2);
  EXPECT_EQ(overflow.code(), ErrorCode::kBusy);
  EXPECT_EQ(repl.Metrics().Value("site.queue_overflow"), 1u);

  // Draining reopens admission.
  ASSERT_TRUE(repl.RunUntilIdle().ok());
  EXPECT_TRUE(repl.EnqueueSegment(sa, 2).ok());
}

TEST(SiteReplicatorTest, InFlightCorruptionIsCaughtAndResent) {
  SimClock clock;
  FaultInjector faults(&clock);
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  a.AddSegment(7, 42);

  SiteReplicator repl(&clock);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  WanLink link("a-b", &clock);
  FaultChannel* channel = faults.Channel("wan.a-b");
  link.AttachFaults(channel);
  repl.SetLink(sa, sb, &link);

  // Every delivery corrupts: all retries burn, the segment stays queued,
  // and the destination never installs a bad image.
  FaultProfile lossy;
  lossy.read_corrupt_p = 1.0;
  channel->set_profile(lossy);
  ASSERT_TRUE(repl.EnqueueSegment(sa, 7).ok());
  ASSERT_TRUE(repl.RunUntilIdle().ok());
  EXPECT_EQ(b.installs, 0);
  EXPECT_EQ(repl.QueueDepth(sa), 1u);
  EXPECT_GE(repl.Metrics().Value("site.corrupt_transfers"), 3u);
  EXPECT_GE(repl.Metrics().Value("site.ship_deferred"), 1u);

  // Link heals: the queued segment goes through and verifies.
  channel->set_profile(FaultProfile{});
  ASSERT_TRUE(repl.RunUntilIdle().ok());
  EXPECT_EQ(b.installs, 1);
  uint32_t crc_a = 0;
  uint32_t crc_b = 0;
  ASSERT_TRUE(a.SegmentCrc(7, &crc_a));
  ASSERT_TRUE(b.SegmentCrc(7, &crc_b));
  EXPECT_EQ(crc_a, crc_b);
}

TEST(SiteReplicatorTest, PartitionMidAntiEntropyResumesWithoutReshipping) {
  SimClock clock;
  FaultInjector faults(&clock);
  FakeSiteStore a(kSegBytes);
  FakeSiteStore b(kSegBytes);
  for (uint32_t t = 0; t < 8; ++t) {
    a.AddSegment(t, 100 + t);
  }

  SiteReplicator repl(&clock);
  int sa = repl.AddSite("a", &a);
  int sb = repl.AddSite("b", &b);
  WanLink link("a-b", &clock);
  FaultChannel* channel = faults.Channel("wan.a-b");
  link.AttachFaults(channel);
  repl.SetLink(sa, sb, &link);

  // First increment ships half the catalog.
  Result<SiteReplicator::AntiEntropyStats> first =
      repl.AntiEntropyRound(sa, sb, /*max_segments=*/4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->compared, 4u);
  EXPECT_EQ(first->divergent, 4u);
  EXPECT_EQ(first->shipped, 4u);
  EXPECT_EQ(b.installs, 4);

  // The WAN partitions mid-round: the next round fails its first ship and
  // parks the cursor right there.
  const SimTime heal_at = clock.Now() + 3600ull * kUsPerSec;
  channel->FailBetween(clock.Now(), heal_at);
  Result<SiteReplicator::AntiEntropyStats> cut = repl.AntiEntropyRound(sa, sb);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->shipped, 0u);
  EXPECT_EQ(cut->failed, 1u);
  EXPECT_EQ(b.installs, 4);

  // Healed: the resumed round compares ONLY the un-synced tail — the four
  // segments shipped before the partition are neither re-compared nor
  // re-shipped.
  if (clock.Now() < heal_at) {
    clock.Advance(heal_at - clock.Now());
  }
  Result<SiteReplicator::AntiEntropyStats> resumed =
      repl.AntiEntropyRound(sa, sb);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->compared, 4u);
  EXPECT_EQ(resumed->shipped, 4u);
  EXPECT_EQ(resumed->skipped_synced, 0u);
  EXPECT_EQ(b.installs, 8);
  // Exactly one copy of each segment ever crossed the wire.
  EXPECT_EQ(repl.stats().bytes_shipped, 8 * kSegBytes);

  // Converged: a full pass verifies everything and ships nothing.
  Result<SiteReplicator::AntiEntropyStats> final_round =
      repl.AntiEntropyRound(sa, sb);
  ASSERT_TRUE(final_round.ok());
  EXPECT_EQ(final_round->compared, 8u);
  EXPECT_EQ(final_round->skipped_synced, 8u);
  EXPECT_EQ(final_round->shipped, 0u);
  EXPECT_EQ(repl.DivergentCountVs(sa, sb), 0u);
}

// --- Against real HighLight deployments -----------------------------------

// A complete HighLight deployment with `nfiles` one-segment files migrated
// to tertiary. Identical inputs build identical tertiary layouts — the same
// deterministic-construction contract the replica tests rely on — so two
// such deployments model a primary site and its fully replicated peer.
std::unique_ptr<HighLightFs> BuildSite(SimClock* clock, uint32_t nfiles) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = 4;
  j.volume_capacity_bytes = 20ull * 64 * kBlockSize;
  Result<HighLightConfig> config = HighLightConfig::Builder()
                                       .AddDisk(Rz57Profile(), 16 * 1024)
                                       .AddJukebox(j, false, 20)
                                       .SegSizeBlocks(64)
                                       .CacheMaxSegments(8)
                                       .AsyncReadPipeline(true)
                                       .TimeseriesCadence(0)
                                       .Build();
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  auto hl = HighLightFs::Create(*config, clock);
  EXPECT_TRUE(hl.ok()) << hl.status().ToString();

  Rng rng(0x517E);
  MigratorOptions data_only;
  data_only.migrate_inode = false;
  data_only.migrate_metadata = false;
  std::vector<uint32_t> inos;
  for (uint32_t i = 0; i < nfiles; ++i) {
    Result<uint32_t> ino = (*hl)->fs().Create("/f" + std::to_string(i));
    EXPECT_TRUE(ino.ok());
    std::vector<uint8_t> payload(200 * 1024);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_TRUE((*hl)->fs().Write(*ino, 0, payload).ok());
    inos.push_back(*ino);
  }
  EXPECT_TRUE((*hl)->fs().Sync().ok());
  EXPECT_TRUE((*hl)->Internals().migrator.MigrateFiles(inos, data_only).ok());
  EXPECT_TRUE((*hl)->DropCleanCacheLines().ok());
  return std::move(*hl);
}

TEST(SiteReplicationTest, ReplicationLedgerSurvivesRemount) {
  SimClock clock;
  FaultInjector faults(&clock);
  auto site_a = BuildSite(&clock, 6);
  auto site_b = BuildSite(&clock, 6);
  ASSERT_NE(site_a, nullptr);
  ASSERT_NE(site_b, nullptr);

  WanLink link("a-b", &clock);
  link.AttachFaults(faults.Channel("wan.a-b"));
  uint32_t enqueued = 0;
  size_t entries = 0;
  {
    SiteReplicator repl(&clock);
    int sa = repl.AddSite("a", site_a.get());
    int sb = repl.AddSite("b", site_b.get());
    repl.SetLink(sa, sb, &link);

    Result<uint32_t> n = repl.EnqueueNewSegments(sa);
    ASSERT_TRUE(n.ok());
    enqueued = *n;
    ASSERT_GT(enqueued, 0u);
    ASSERT_TRUE(repl.RunUntilIdle().ok());
    EXPECT_EQ(repl.QueueDepth(sa), 0u);
    entries = repl.LedgerEntries(sa);
    EXPECT_EQ(entries, enqueued);
  }

  // Crash + remount of the source site: in-core state (including the CRC
  // catalog) is gone; the ledger blob comes back from the site's own LFS.
  ASSERT_TRUE(site_a->Remount().ok());

  SiteReplicator fresh(&clock);
  int sa = fresh.AddSite("a", site_a.get());
  int sb = fresh.AddSite("b", site_b.get());
  fresh.SetLink(sa, sb, &link);
  EXPECT_EQ(fresh.LedgerEntries(sa), 0u);
  ASSERT_TRUE(fresh.LoadLedger(sa).ok());
  EXPECT_EQ(fresh.LedgerEntries(sa), entries);
  // Everything had shipped before the crash, so nothing re-queues...
  EXPECT_EQ(fresh.QueueDepth(sa), 0u);
  // ...and the post-migration sweep re-ships nothing either.
  Result<uint32_t> again = fresh.EnqueueNewSegments(sa);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(fresh.Metrics().Value("site.ledger_loads"), 1u);
}

TEST(SiteReplicationTest, FailoverFansOutCoalescedRecallToAllWaiters) {
  SimClock clock;
  FaultInjector faults(&clock);
  auto site_a = BuildSite(&clock, 6);
  auto site_b = BuildSite(&clock, 6);
  ASSERT_NE(site_a, nullptr);
  ASSERT_NE(site_b, nullptr);
  ASSERT_EQ(site_a->FetchableSegments(), site_b->FetchableSegments());

  WanLink link("a-b", &clock);
  link.AttachFaults(faults.Channel("wan.a-b"));
  SiteReplicator repl(&clock);
  int ra = repl.AddSite("a", site_a.get());
  int rb = repl.AddSite("b", site_b.get());
  repl.SetLink(ra, rb, &link);

  StagerScheduler stager(&clock);
  int p = stager.AddShard(site_a.get());
  int q = stager.AddShard(site_b.get());
  stager.SetShardSite(p, ra);
  stager.SetShardSite(q, rb);
  stager.SetFailoverPeer(p, q);
  stager.SetFailoverPeer(q, p);
  stager.SetSiteHealthProvider(&repl);

  std::vector<uint32_t> pool = site_a->FetchableSegments();
  ASSERT_FALSE(pool.empty());

  // Two tenants fault the same segment — one coalesced in-flight recall —
  // and the home site dies before the batch dispatches.
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[0]).ok());
  ASSERT_TRUE(stager.SubmitFetch("bob", p, pool[0]).ok());
  repl.SetSiteQuarantined(ra, true);
  ASSERT_TRUE(stager.RunUntilIdle().ok());

  // The peer site served one coalesced fetch; BOTH waiters completed.
  EXPECT_EQ(site_a->Metrics().Value("service.demand_fetches"), 0u);
  EXPECT_EQ(site_b->Metrics().Value("service.demand_fetches"), 1u);
  EXPECT_EQ(stager.ServedFor("alice"), 1u);
  EXPECT_EQ(stager.ServedFor("bob"), 1u);
  EXPECT_EQ(stager.Metrics().Value("stager.coalesced"), 1u);
  EXPECT_GE(stager.Metrics().Value("stager.failover_fetches"), 1u);

  // Site back up: recalls return home.
  repl.SetSiteQuarantined(ra, false);
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[1]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(site_a->Metrics().Value("service.demand_fetches"), 1u);
}

TEST(SiteReplicationTest, ScrubberRepairsFromPeerSiteAsLastResort) {
  SimClock clock;
  FaultInjector faults(&clock);
  auto site_a = BuildSite(&clock, 4);
  auto site_b = BuildSite(&clock, 4);
  ASSERT_NE(site_a, nullptr);
  ASSERT_NE(site_b, nullptr);

  WanLink link("a-b", &clock);
  link.AttachFaults(faults.Channel("wan.a-b"));
  SiteReplicator repl(&clock);
  int ra = repl.AddSite("a", site_a.get());
  int rb = repl.AddSite("b", site_b.get());
  repl.SetLink(ra, rb, &link);

  // Identical construction gives an identical *layout*, but segment images
  // embed write-time metadata, so peer bytes only match after replication
  // has actually shipped them. Converge B to A's content first.
  Result<uint32_t> synced = repl.EnqueueNewSegments(ra);
  ASSERT_TRUE(synced.ok());
  ASSERT_GT(*synced, 0u);
  ASSERT_TRUE(repl.RunUntilIdle().ok());
  ASSERT_EQ(repl.DivergentCountVs(ra, rb), 0u);

  // Corrupt one primary on site A's media. There are no local replicas, so
  // without the peer this would be an unrecoverable loss.
  std::vector<uint32_t> pool = site_a->FetchableSegments();
  ASSERT_FALSE(pool.empty());
  const uint32_t victim = pool[0];
  auto internals = site_a->Internals();
  const uint32_t volume = internals.address_map.VolumeOfTseg(victim);
  Result<Volume*> vol = internals.footprint.GetVolume(static_cast<int>(volume));
  ASSERT_TRUE(vol.ok());
  std::vector<uint8_t> junk(kBlockSize, 0xA5);
  ASSERT_TRUE(
      (*vol)
          ->Write(internals.address_map.ByteOffsetOnVolume(victim), junk)
          .ok());

  internals.scrubber.SetRemoteRepairSource(
      [&](uint32_t tseg) { return repl.FetchVerifiedImage(ra, tseg); });
  Result<Scrubber::Report> report = internals.scrubber.ScrubAll();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_EQ(report->unrecoverable, 0u);
  EXPECT_TRUE(internals.scrubber.LostSegments().empty());
  EXPECT_EQ(internals.scrubber.stats().remote_repairs, 1u);
  EXPECT_GT(link.bytes_shipped(), 0u);
}

}  // namespace
}  // namespace hl
