// Federation stager tests: class priority (demand > migration > scrub),
// per-tenant fair share under a hot tenant, drive-token contention across
// the shared farm, duplicate-recall coalescing, admission-bound rejection,
// quarantine steering onto a replica shard (against real HighLight shards),
// and population-generator determinism.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "federation/stager.h"
#include "highlight/highlight.h"
#include "util/rng.h"
#include "workload/population.h"

namespace hl {
namespace {

// A deterministic scripted shard: every fetch costs a fixed slice of sim
// time; batches, migrations, and scrub steps are recorded for inspection.
class FakeShard : public FetchBackend {
 public:
  FakeShard(SimClock* clock, uint32_t nsegs, SimTime fetch_cost_us)
      : clock_(clock), nsegs_(nsegs), fetch_cost_us_(fetch_cost_us) {}

  bool SegmentCached(uint32_t tseg) const override {
    return cached_.count(tseg) != 0;
  }
  uint32_t TertiarySegments() const override { return nsegs_; }
  std::vector<uint32_t> FetchableSegments() const override {
    std::vector<uint32_t> segs;
    for (uint32_t t = 0; t < nsegs_; ++t) {
      segs.push_back(t);
    }
    return segs;
  }
  Result<FetchOutcome> FetchSegment(uint32_t tseg) override {
    clock_->Advance(fetch_cost_us_);
    fetched.push_back(tseg);
    return FetchOutcome{tseg, OkStatus(), fetch_cost_us_};
  }
  Result<std::vector<FetchOutcome>> FetchBatch(
      const std::vector<uint32_t>& tsegs) override {
    batches.push_back(tsegs);
    std::vector<FetchOutcome> outcomes;
    for (uint32_t tseg : tsegs) {
      clock_->Advance(fetch_cost_us_);
      fetched.push_back(tseg);
      outcomes.push_back(FetchOutcome{tseg, OkStatus(), fetch_cost_us_});
    }
    return outcomes;
  }
  Result<MigrationReport> Migrate(const MigrationRequest&) override {
    migrations++;
    return MigrationReport{};
  }
  Result<uint32_t> ScrubStep(uint32_t max_segments) override {
    scrubs++;
    return max_segments;
  }
  uint64_t MediaSwaps() const override { return 0; }

  void MarkCached(uint32_t tseg) { cached_.insert(tseg); }

  std::vector<std::vector<uint32_t>> batches;
  std::vector<uint32_t> fetched;
  int migrations = 0;
  int scrubs = 0;

 private:
  SimClock* clock_;
  uint32_t nsegs_;
  SimTime fetch_cost_us_;
  std::set<uint32_t> cached_;
};

TEST(StagerSchedulerTest, ClassPriorityDemandBeatsMigrationBeatsScrub) {
  SimClock clock;
  FakeShard shard(&clock, 8, 1000);
  StagerScheduler stager(&clock);
  stager.AddShard(&shard);

  ASSERT_TRUE(stager.SubmitScrub(0, 4).ok());
  ASSERT_TRUE(stager
                  .SubmitMigration("ops", 0, MigrationRequest{.path = "/"})
                  .ok());
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 3).ok());

  // Round 1: the demand recall goes out alone; maintenance waits.
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(shard.fetched, std::vector<uint32_t>{3});
  EXPECT_EQ(shard.migrations, 0);
  EXPECT_EQ(shard.scrubs, 0);

  // Round 2: no demand left, the migration pass runs. Round 3: scrub.
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(shard.migrations, 1);
  EXPECT_EQ(shard.scrubs, 0);
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(shard.scrubs, 1);
  EXPECT_EQ(stager.PendingRequests(), 0u);

  MetricsSnapshot snap = stager.Metrics();
  EXPECT_EQ(snap.Value("stager.demand_served"), 1u);
  EXPECT_EQ(snap.Value("stager.migration_runs"), 1u);
  EXPECT_EQ(snap.Value("stager.scrub_steps"), 1u);
}

TEST(StagerSchedulerTest, FairShareCapsHotTenantPerRound) {
  SimClock clock;
  FakeShard shard(&clock, 64, 1000);
  StagerConfig config;
  config.fair_share_quantum = 8;
  config.max_batch = 64;  // Fairness, not batch size, is under test.
  StagerScheduler stager(&clock, config);
  stager.AddShard(&shard);

  // One hot tenant floods 40 recalls; three cold tenants want 4 each.
  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(stager.SubmitFetch("hot", 0, i).ok());
  }
  for (int t = 0; t < 3; ++t) {
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(stager
                      .SubmitFetch("cold" + std::to_string(t), 0,
                                   40 + t * 4 + i)
                      .ok());
    }
  }

  // One round: the hot tenant is capped at its quantum while every cold
  // tenant's full demand fits within its own share.
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(stager.ServedFor("hot"), 8u);
  EXPECT_EQ(stager.ServedFor("cold0"), 4u);
  EXPECT_EQ(stager.ServedFor("cold1"), 4u);
  EXPECT_EQ(stager.ServedFor("cold2"), 4u);
  EXPECT_EQ(stager.PendingRequests(), 32u);

  // Drained, everyone is whole.
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(stager.ServedFor("hot"), 40u);
  EXPECT_EQ(stager.ServedFor("cold2"), 4u);
}

TEST(StagerSchedulerTest, DriveTokensSerializeShardsAcrossRounds) {
  SimClock clock;
  FakeShard shard0(&clock, 8, 1000);
  FakeShard shard1(&clock, 8, 1000);
  StagerConfig config;
  config.drive_tokens = 1;  // One drive for the whole farm.
  StagerScheduler stager(&clock, config);
  stager.AddShard(&shard0);
  stager.AddShard(&shard1);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 1).ok());
  ASSERT_TRUE(stager.SubmitFetch("bob", 1, 2).ok());

  // Round 1: only the first tenant's shard holds the drive.
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(shard0.fetched.size(), 1u);
  EXPECT_EQ(shard1.fetched.size(), 0u);
  EXPECT_GE(stager.Metrics().Value("stager.drive_waits"), 1u);

  // Round 2: the rotation hands the drive to the deferred shard.
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(shard1.fetched.size(), 1u);
  EXPECT_EQ(stager.PendingRequests(), 0u);
}

TEST(StagerSchedulerTest, CoalescesDuplicateRecallsWithinBatch) {
  SimClock clock;
  FakeShard shard(&clock, 8, 1000);
  StagerScheduler stager(&clock);
  stager.AddShard(&shard);

  // Two tenants fault the same segment in the same round.
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 5).ok());
  ASSERT_TRUE(stager.SubmitFetch("bob", 0, 5).ok());
  ASSERT_TRUE(stager.Pump().ok());

  // The shard saw one fetch; both tenants were served.
  ASSERT_EQ(shard.batches.size(), 1u);
  EXPECT_EQ(shard.batches[0], std::vector<uint32_t>{5});
  EXPECT_EQ(stager.ServedFor("alice"), 1u);
  EXPECT_EQ(stager.ServedFor("bob"), 1u);
  EXPECT_EQ(stager.Metrics().Value("stager.coalesced"), 1u);
}

TEST(StagerSchedulerTest, AdmissionBoundRejectsWithBusy) {
  SimClock clock;
  FakeShard shard(&clock, 8, 1000);
  StagerConfig config;
  config.max_queue = 3;
  StagerScheduler stager(&clock, config);
  stager.AddShard(&shard);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 0).ok());
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 1).ok());
  ASSERT_TRUE(stager.SubmitScrub(0, 2).ok());
  Status overflow = stager.SubmitFetch("alice", 0, 2);
  EXPECT_EQ(overflow.code(), ErrorCode::kBusy);
  EXPECT_EQ(stager.Metrics().Value("stager.rejected"), 1u);

  // Service drains the queue and admission reopens.
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_TRUE(stager.SubmitFetch("alice", 0, 2).ok());
}

TEST(StagerSchedulerTest, AgingPromotesStarvedMaintenanceUnderDemandFlood) {
  SimClock clock;
  FakeShard shard(&clock, 64, 1000);
  StagerConfig config;
  config.aging_rounds = 2;  // Promote after two straight demand rounds.
  StagerScheduler stager(&clock, config);
  stager.AddShard(&shard);

  ASSERT_TRUE(stager
                  .SubmitMigration("ops", 0, MigrationRequest{.path = "/"})
                  .ok());
  ASSERT_TRUE(stager.SubmitScrub(0, 4).ok());

  // A demand flood: every round has fresh recalls, so strict priority
  // would starve maintenance forever.
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 0).ok());
  ASSERT_TRUE(stager.Pump().ok());  // Round 1: starvation builds.
  EXPECT_EQ(shard.migrations, 0);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 1).ok());
  ASSERT_TRUE(stager.Pump().ok());  // Round 2: the migration ages in.
  EXPECT_EQ(shard.migrations, 1);
  EXPECT_EQ(shard.scrubs, 0);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 2).ok());
  ASSERT_TRUE(stager.Pump().ok());  // Round 3: counter restarted.
  EXPECT_EQ(shard.scrubs, 0);
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 3).ok());
  ASSERT_TRUE(stager.Pump().ok());  // Round 4: now the scrub ages in.
  EXPECT_EQ(shard.scrubs, 1);

  EXPECT_EQ(stager.ServedFor("alice"), 4u);  // Demand never waited.
  EXPECT_EQ(stager.Metrics().Value("stager.aging_promotions"), 2u);
}

TEST(StagerSchedulerTest, StrictPriorityByDefaultNeverPromotes) {
  SimClock clock;
  FakeShard shard(&clock, 64, 1000);
  StagerScheduler stager(&clock);  // aging_rounds = 0.
  stager.AddShard(&shard);

  ASSERT_TRUE(stager
                  .SubmitMigration("ops", 0, MigrationRequest{.path = "/"})
                  .ok());
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(stager.SubmitFetch("alice", 0, i).ok());
    ASSERT_TRUE(stager.Pump().ok());
    EXPECT_EQ(shard.migrations, 0);
  }
  EXPECT_EQ(stager.Metrics().Value("stager.aging_promotions"), 0u);
}

TEST(StagerSchedulerTest, CacheHitsCountedFromShardCacheState) {
  SimClock clock;
  FakeShard shard(&clock, 8, 1000);
  shard.MarkCached(2);
  StagerScheduler stager(&clock);
  stager.AddShard(&shard);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 2).ok());
  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 3).ok());
  ASSERT_TRUE(stager.Pump().ok());
  EXPECT_EQ(stager.Metrics().Value("stager.cache_hits"), 1u);
}

// --- Quarantine steering against real HighLight shards --------------------

JukeboxProfile TinyJukebox() {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = 4;
  j.volume_capacity_bytes = 20ull * 64 * kBlockSize;
  return j;
}

// A small shard with `nfiles` one-segment files migrated to tertiary.
// Identical inputs produce an identical tertiary layout, which is the
// replica-pairing contract.
std::unique_ptr<HighLightFs> BuildRealShard(SimClock* clock,
                                            uint32_t nfiles) {
  Result<HighLightConfig> config = HighLightConfig::Builder()
                                       .AddDisk(Rz57Profile(), 16 * 1024)
                                       .AddJukebox(TinyJukebox(), false, 20)
                                       .SegSizeBlocks(64)
                                       .CacheMaxSegments(8)
                                       .AsyncReadPipeline(true)
                                       .TimeseriesCadence(0)
                                       .Build();
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  auto hl = HighLightFs::Create(*config, clock);
  EXPECT_TRUE(hl.ok()) << hl.status().ToString();

  Rng rng(0xFED);
  MigratorOptions data_only;
  data_only.migrate_inode = false;
  data_only.migrate_metadata = false;
  std::vector<uint32_t> inos;
  for (uint32_t i = 0; i < nfiles; ++i) {
    Result<uint32_t> ino = (*hl)->fs().Create("/f" + std::to_string(i));
    EXPECT_TRUE(ino.ok());
    std::vector<uint8_t> payload(200 * 1024);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_TRUE((*hl)->fs().Write(*ino, 0, payload).ok());
    inos.push_back(*ino);
  }
  EXPECT_TRUE((*hl)->fs().Sync().ok());
  EXPECT_TRUE((*hl)->Internals().migrator.MigrateFiles(inos, data_only).ok());
  EXPECT_TRUE((*hl)->DropCleanCacheLines().ok());
  return std::move(*hl);
}

TEST(FederationTest, QuarantinedShardSteersFetchesToReplica) {
  SimClock clock;
  auto primary = BuildRealShard(&clock, 6);
  auto replica = BuildRealShard(&clock, 6);
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(replica, nullptr);
  // Replica contract: same construction, same tertiary layout.
  ASSERT_EQ(primary->FetchableSegments(), replica->FetchableSegments());

  StagerScheduler stager(&clock);
  int p = stager.AddShard(primary.get());
  int r = stager.AddShard(replica.get());
  stager.SetReplicaShard(p, r);

  std::vector<uint32_t> pool = primary->FetchableSegments();
  ASSERT_FALSE(pool.empty());

  // Healthy: the primary serves its own recalls.
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[0]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(primary->Metrics().Value("service.demand_fetches"), 1u);
  EXPECT_EQ(replica->Metrics().Value("service.demand_fetches"), 0u);

  // Quarantined: recalls steer to the replica shard.
  stager.SetShardQuarantined(p, true);
  EXPECT_TRUE(stager.ShardQuarantined(p));
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[1]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(primary->Metrics().Value("service.demand_fetches"), 1u);
  EXPECT_EQ(replica->Metrics().Value("service.demand_fetches"), 1u);
  EXPECT_EQ(stager.Metrics().Value("stager.steered_to_replica"), 1u);

  // Rehabilitated: recalls return to the primary.
  stager.SetShardQuarantined(p, false);
  ASSERT_TRUE(stager.SubmitFetch("alice", p, pool[2]).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(primary->Metrics().Value("service.demand_fetches"), 2u);
  EXPECT_EQ(stager.ServedFor("alice"), 3u);
}

TEST(FederationTest, QuarantinedReplicalessShardStillServes) {
  SimClock clock;
  FakeShard shard(&clock, 8, 1000);
  StagerScheduler stager(&clock);
  stager.AddShard(&shard);
  stager.SetShardQuarantined(0, true);

  ASSERT_TRUE(stager.SubmitFetch("alice", 0, 4).ok());
  ASSERT_TRUE(stager.RunUntilIdle().ok());
  EXPECT_EQ(shard.fetched, std::vector<uint32_t>{4});
  EXPECT_EQ(stager.Metrics().Value("stager.steered_to_replica"), 0u);
}

// --- Population generator -------------------------------------------------

TEST(PopulationGeneratorTest, DeterministicAndWellFormed) {
  PopulationParams params;
  params.users = 100'000;
  params.tenants = 4;
  params.catalog_files = 1024;
  params.sessions = 200;
  params.seed = 77;

  PopulationGenerator a(params);
  PopulationGenerator b(params);
  SimTime last_open = 0;
  uint64_t opens = 0;
  uint64_t closes = 0;
  while (true) {
    auto ea = a.Next();
    auto eb = b.Next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea.has_value()) {
      break;
    }
    // Same seed, same stream — field for field.
    EXPECT_EQ(ea->at, eb->at);
    EXPECT_EQ(ea->user, eb->user);
    EXPECT_EQ(ea->file, eb->file);
    EXPECT_EQ(ea->tenant, eb->tenant);
    EXPECT_LT(ea->user, params.users);
    EXPECT_LT(ea->file, params.catalog_files);
    EXPECT_LT(ea->tenant, params.tenants);
    EXPECT_EQ(ea->tenant, a.TenantOf(ea->user));
    if (ea->session_open) {
      // Session starts are nondecreasing across the stream.
      EXPECT_GE(ea->at, last_open);
      last_open = ea->at;
      opens++;
    }
    closes += ea->session_close ? 1 : 0;
  }
  EXPECT_EQ(opens, params.sessions);
  EXPECT_EQ(closes, params.sessions);
  EXPECT_EQ(a.sessions_emitted(), params.sessions);
  EXPECT_GE(a.requests_emitted(), params.sessions);
}

TEST(PopulationGeneratorTest, ZipfSkewsTowardLowRanks) {
  PopulationParams params;
  params.catalog_files = 10'000;
  params.sessions = 2'000;
  params.mean_session_requests = 1;
  params.sequential_fraction = 0.0;
  params.seed = 123;

  PopulationGenerator gen(params);
  uint64_t top_decile = 0;
  uint64_t total = 0;
  while (auto ev = gen.Next()) {
    total++;
    if (ev->file < params.catalog_files / 10) {
      top_decile++;
    }
  }
  // Uniform would put ~10% in the top decile; theta=0.99 concentrates the
  // popular head far beyond that.
  EXPECT_GT(top_decile * 100, total * 50);
}

TEST(PopulationGeneratorTest, DiurnalCurvePeaksInTheAfternoon) {
  PopulationParams params;
  PopulationGenerator gen(params);
  SimTime peak = 16ull * 3600 * kUsPerSec;    // 16:00.
  SimTime trough = 4ull * 3600 * kUsPerSec;   // 04:00.
  EXPECT_GT(gen.LoadAt(peak), 1.5);
  EXPECT_LT(gen.LoadAt(trough), 0.5);
  // Mean-1 shape: the two extremes bracket the flat level.
  EXPECT_NEAR(gen.LoadAt(peak) + gen.LoadAt(trough), 2.0, 1e-9);
}

}  // namespace
}  // namespace hl
