// Swap-aware asynchronous read pipeline tests: demand-before-prefetch issue
// priority, mounted-volume batching, elevator amortization of media swaps
// with critical-segment-first resume, concurrent-fault coalescing onto one
// in-flight fetch, duplicate read-ahead suppression, quarantined-volume
// source exclusion, and the shrink-while-pending queue-depth regression.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "lfs/fsck.h"
#include "util/health.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

JukeboxProfile SmallJukebox(int slots, uint64_t volume_bytes) {
  JukeboxProfile j = Hp6300MoProfile();
  j.num_slots = slots;
  j.volume_capacity_bytes = volume_bytes;
  return j;
}

class ReadPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(/*async=*/true); }

  void Build(bool async, bool readahead = false,
             const MigratorOptions& opts = MigratorOptions{},
             const HealthPolicy& health = HealthPolicy{}) {
    hl_.reset();
    clock_ = SimClock();
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 16 * 1024});  // 64 MB.
    // 4 volumes x 20 segments of 256 KB = 5 MB per volume.
    config.jukeboxes.push_back(
        {SmallJukebox(4, 20ull * 64 * kBlockSize), false, 20});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    config.migrator = opts;
    config.sequential_readahead = readahead;
    config.async_read_pipeline = async;
    config.health = health;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok()) << hl.status().ToString();
    hl_ = std::move(*hl);
  }

  uint32_t MakeFile(const std::string& path, size_t bytes, uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().Create(path);
    EXPECT_TRUE(ino.ok()) << ino.status().ToString();
    EXPECT_TRUE(hl_->fs().Write(*ino, 0, Pattern(bytes, seed)).ok());
    return *ino;
  }

  // Creates a one-segment file migrated to `volume`; returns its tseg.
  uint32_t MigratedTseg(const std::string& path, uint32_t volume,
                        uint64_t seed) {
    uint32_t ino = MakeFile(path, 200 * 1024, seed);
    MigratorOptions opts;
    opts.preferred_volume = volume;
    EXPECT_TRUE(hl_->Internals().migrator.MigrateFiles({ino}, opts).ok());
    return last_migrated_[volume]++;
  }

  // Tracks the next tseg each volume's migrations land on.
  void InitTsegCursors() {
    for (uint32_t v = 0; v < 4; ++v) {
      last_migrated_[v] = hl_->Internals().address_map.FirstTsegOfVolume(v);
    }
  }

  void ExpectFileContents(const std::string& path, size_t bytes,
                          uint64_t seed) {
    Result<uint32_t> ino = hl_->fs().LookupPath(path);
    ASSERT_TRUE(ino.ok()) << path;
    std::vector<uint8_t> out(bytes);
    Result<size_t> n = hl_->fs().Read(*ino, 0, out);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, bytes);
    EXPECT_EQ(out, Pattern(bytes, seed)) << path << " contents differ";
  }

  void ExpectFsckClean() {
    FsckReport report = CheckFs(hl_->fs());
    EXPECT_TRUE(report.clean())
        << (report.errors.empty() ? "" : report.errors[0]);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
  uint32_t last_migrated_[4] = {0, 0, 0, 0};
};

TEST_F(ReadPipelineTest, DemandReadsIssueBeforeQueuedPrefetches) {
  InitTsegCursors();
  uint32_t pre_tseg = MigratedTseg("/prefetched", 1, 31);
  uint32_t dem_tseg = MigratedTseg("/demanded", 2, 32);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  IoServer& io = hl_->Internals().io_server;
  io.set_max_queue_depth(1);  // One issue, then the window is full.
  io.HoldReads();
  auto image = std::make_shared<std::vector<uint8_t>>(io.SegBytes());
  ASSERT_TRUE(io.EnqueuePrefetchRead(pre_tseg, kNoSegment, image,
                                     [](const Status&, SimTime) {})
                  .ok());
  ASSERT_TRUE(
      io.EnqueueDemandRead(dem_tseg, kNoSegment, [](const Status&, SimTime) {})
          .ok());
  ASSERT_TRUE(io.ReleaseReads().ok());

  // The younger demand read won the only window slot.
  EXPECT_FALSE(io.ReadQueued(dem_tseg));
  EXPECT_TRUE(io.ReadQueued(pre_tseg));
  ASSERT_TRUE(io.Drain().ok());
  EXPECT_FALSE(io.ReadQueued(pre_tseg));
  EXPECT_EQ(io.stats().demand_reads_enqueued, 1u);
  EXPECT_EQ(io.stats().prefetch_reads_enqueued, 1u);
}

TEST_F(ReadPipelineTest, MountedVolumeReadBeatsOlderSwapRead) {
  InitTsegCursors();
  uint32_t unmounted_tseg = MigratedTseg("/needs-swap", 1, 33);
  uint32_t mounted_tseg = MigratedTseg("/mounted", 0, 34);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  // Seat volume 0 in the read drive.
  std::vector<uint8_t> sector(4096);
  ASSERT_TRUE(hl_->Internals().footprint.Read(0, 0, sector).ok());

  IoServer& io = hl_->Internals().io_server;
  io.set_max_queue_depth(1);
  io.HoldReads();
  ASSERT_TRUE(io.EnqueueDemandRead(unmounted_tseg, kNoSegment,
                                   [](const Status&, SimTime) {})
                  .ok());
  ASSERT_TRUE(io.EnqueueDemandRead(mounted_tseg, kNoSegment,
                                   [](const Status&, SimTime) {})
                  .ok());
  ASSERT_TRUE(io.ReleaseReads().ok());

  // Same class, but the mounted volume's read jumped the older one.
  EXPECT_FALSE(io.ReadQueued(mounted_tseg));
  EXPECT_TRUE(io.ReadQueued(unmounted_tseg));
  EXPECT_GE(io.stats().read_mounted_picks, 1u);
  ASSERT_TRUE(io.Drain().ok());
}

TEST_F(ReadPipelineTest, BatchedFaultsAmortizeSwapsAndResumeCriticalFirst) {
  // Four faults alternating across two unmounted volumes. Synchronous
  // service swaps the single read drive on every fetch (4 swaps); the
  // async elevator serves each volume's pair together (2 swaps).
  struct RunResult {
    uint64_t swaps = 0;
    SimTime mean_delay = 0;
    std::vector<ServiceProcess::BatchFetchResult> results;
  };
  auto run = [this](bool async) {
    Build(async);
    InitTsegCursors();
    uint32_t v1a = MigratedTseg("/v1a", 1, 41);
    uint32_t v2a = MigratedTseg("/v2a", 2, 42);
    uint32_t v1b = MigratedTseg("/v1b", 1, 43);
    uint32_t v2b = MigratedTseg("/v2b", 2, 44);
    // Park the write drive on volume 3 so neither fetch volume is seated.
    MigratedTseg("/park", 3, 45);
    EXPECT_TRUE(hl_->DropCleanCacheLines().ok());
    uint64_t swaps0 = hl_->Internals().footprint.TotalMediaSwaps();
    auto res = hl_->Internals().service.DemandFetchBatch({v1a, v2a, v1b, v2b});
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    RunResult out;
    out.swaps = hl_->Internals().footprint.TotalMediaSwaps() - swaps0;
    for (const auto& r : *res) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      out.mean_delay += r.delay_us;
    }
    out.mean_delay /= res->size();
    out.results = std::move(*res);
    return out;
  };

  RunResult sync = run(/*async=*/false);
  EXPECT_EQ(sync.swaps, 4u);

  RunResult async = run(/*async=*/true);
  EXPECT_EQ(async.swaps, 2u) << "elevator should load each volume once";
  EXPECT_LT(async.mean_delay, sync.mean_delay);
  // Critical-segment-first: /v1b (queued third) resumes before /v2a
  // (queued second) because its volume's transfer lands first.
  EXPECT_LT(async.results[2].delay_us, async.results[1].delay_us);
  // The second read on each mounted volume rode the seated medium.
  EXPECT_GE(hl_->Internals().io_server.stats().read_mounted_picks, 2u);
  MetricsSnapshot snap = hl_->Metrics();
  EXPECT_GE(snap.Value("jukebox.HP6300-MO.mounted_transfers"), 2u);
  EXPECT_EQ(snap.Value("io.read_queue.demand_enqueued"), 4u);
  EXPECT_GT(hl_->trace().CountOf(TraceEvent::kFetchBatch), 0u);
  ExpectFileContents("/v1a", 200 * 1024, 41);
  ExpectFileContents("/v2a", 200 * 1024, 42);
  ExpectFileContents("/v1b", 200 * 1024, 43);
  ExpectFileContents("/v2b", 200 * 1024, 44);
  ExpectFsckClean();
}

TEST_F(ReadPipelineTest, ConcurrentFaultsOnOneTsegShareOneTransfer) {
  InitTsegCursors();
  uint32_t tseg = MigratedTseg("/hot", 0, 51);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  uint64_t fetched0 = hl_->Internals().io_server.stats().segments_fetched;
  auto res = hl_->Internals().service.DemandFetchBatch({tseg, tseg, tseg});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  for (const auto& r : *res) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ(hl_->Internals().io_server.stats().segments_fetched - fetched0, 1u)
      << "duplicate faults must coalesce onto one tertiary transfer";
  SegmentCache::Stats cs = hl_->Internals().cache.Snapshot();
  EXPECT_EQ(cs.inflight_waits, 2u);
  EXPECT_GE(cs.inflight_begun, 1u);
  EXPECT_GE(cs.inflight_completed, 1u);
  // Waiters become usable the instant the shared transfer lands.
  EXPECT_EQ((*res)[1].delay_us, (*res)[0].delay_us);
  EXPECT_EQ((*res)[2].delay_us, (*res)[0].delay_us);
  MetricsSnapshot snap = hl_->Metrics();
  EXPECT_EQ(snap.Value("io.read_queue.demand_enqueued"), 1u);
  EXPECT_EQ(snap.Value("cache.inflight.waits"), 2u);
  ExpectFileContents("/hot", 200 * 1024, 51);
}

TEST_F(ReadPipelineTest, DuplicateReadaheadSuppressedWhileReadQueued) {
  Build(/*async=*/true, /*readahead=*/true);
  uint32_t ino = MakeFile("/seq", 600 * 1024, 61);
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({ino}, MigratorOptions{}).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  uint32_t first = hl_->Internals().address_map.FirstTsegOfVolume(0);

  ASSERT_TRUE(hl_->Internals().service.DemandFetch(first).ok());
  EXPECT_EQ(hl_->Internals().service.stats().readaheads_issued, 1u);
  EXPECT_TRUE(hl_->Internals().io_server.ReadQueued(first + 1))
      << "read-ahead should sit lazily in the queue";

  // Re-running the demand path re-triggers the read-ahead policy; the
  // still-queued read for first+1 must not be fetched twice.
  ASSERT_TRUE(hl_->Internals().service.DemandFetch(first).ok());
  EXPECT_EQ(hl_->Internals().service.stats().readaheads_issued, 1u);
  EXPECT_EQ(hl_->Internals().service.stats().readaheads_wasted, 1u);

  // The predicted miss promotes the queued prefetch instead of refetching.
  ASSERT_TRUE(hl_->Internals().service.DemandFetch(first + 1).ok());
  EXPECT_EQ(hl_->Internals().io_server.stats().reads_coalesced, 1u);
  EXPECT_EQ(hl_->Internals().service.stats().readaheads_consumed, 1u);
  EXPECT_EQ(hl_->Metrics().Value("io.read_queue.coalesced"), 1u);
  ExpectFileContents("/seq", 600 * 1024, 61);
  ExpectFsckClean();
}

TEST_F(ReadPipelineTest, QuarantinedVolumeOrderedLastAmongFetchSources) {
  HealthPolicy strict;
  strict.suspect_after = 1;
  strict.quarantine_after = 1;
  Build(/*async=*/true, /*readahead=*/false, MigratorOptions{}, strict);
  InitTsegCursors();
  uint32_t ino = MakeFile("/replicated", 200 * 1024, 71);
  MigratorOptions opts;
  opts.replicas = 1;
  opts.preferred_volume = 0;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({ino}, opts).ok());
  uint32_t primary = hl_->Internals().address_map.FirstTsegOfVolume(0);
  ASSERT_EQ(hl_->Internals().tseg_table.ReplicasOf(primary).size(), 1u);
  // Park the write drive on volume 3 so neither copy's volume is seated
  // and the healthy primary is tried first (stable source order).
  MigratedTseg("/park", 3, 72);
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // Every read of volume 0 fails: the first fetch burns its retry budget
  // on the primary, fails over to the replica, and quarantines volume 0.
  FaultProfile broken;
  broken.read_transient_p = 1.0;
  ASSERT_GT(hl_->Internals().faults.SetProfile("volume.HP6300-MO.vol0", broken), 0);

  ASSERT_TRUE(hl_->Internals().service.DemandFetch(primary).ok());
  EXPECT_GE(hl_->Internals().io_server.stats().failovers, 1u);
  EXPECT_GE(hl_->Internals().io_server.stats().replica_reads, 1u);
  EXPECT_EQ(hl_->Internals().health.VolumeState(0), HealthState::kQuarantined);

  // With volume 0 quarantined it drops to the back of the candidate list:
  // the next fetch goes straight to the replica, no failover needed.
  uint64_t failovers = hl_->Internals().io_server.stats().failovers;
  ASSERT_TRUE(hl_->Internals().service.Eject(primary).ok());
  ASSERT_TRUE(hl_->Internals().service.DemandFetch(primary).ok());
  EXPECT_EQ(hl_->Internals().io_server.stats().failovers, failovers)
      << "a quarantined primary must not be tried before a healthy replica";
  EXPECT_GE(hl_->Internals().io_server.stats().replica_reads, 2u);
  ExpectFileContents("/replicated", 200 * 1024, 71);
}

TEST_F(ReadPipelineTest, ShrinkingQueueDepthBelowOccupancyStillDrains) {
  MigratorOptions delayed;
  delayed.delayed_copyout = true;
  Build(/*async=*/true, /*readahead=*/false, delayed);
  InitTsegCursors();
  uint32_t a = MakeFile("/qa", 200 * 1024, 81);
  uint32_t b = MakeFile("/qb", 200 * 1024, 82);
  uint32_t c = MakeFile("/qc", 200 * 1024, 83);
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({a}, delayed).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({b}, delayed).ok());
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({c}, delayed).ok());
  ASSERT_EQ(hl_->Internals().migrator.PendingSegments(), 3u);

  IoServer& io = hl_->Internals().io_server;
  io.set_max_queue_depth(2);
  uint32_t first = hl_->Internals().address_map.FirstTsegOfVolume(0);
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(first).ok());
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(first + 1).ok());
  ASSERT_TRUE(hl_->Internals().migrator.EnqueueCopyOut(first + 2).ok());
  ASSERT_GT(io.QueueDepth() + io.Outstanding(), 0u);

  // Shrink below current occupancy, then all the way to zero: the depth
  // clamps to one so the window can still retire work, and Drain() must
  // complete instead of wedging.
  io.set_max_queue_depth(1);
  io.set_max_queue_depth(0);
  EXPECT_EQ(io.max_queue_depth(), 1u);
  ASSERT_TRUE(hl_->Internals().migrator.FlushStaging().ok());
  EXPECT_EQ(io.QueueDepth(), 0u);
  EXPECT_EQ(io.Outstanding(), 0u);
  EXPECT_EQ(hl_->Internals().migrator.PendingSegments(), 0u);

  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  ExpectFileContents("/qa", 200 * 1024, 81);
  ExpectFileContents("/qb", 200 * 1024, 82);
  ExpectFileContents("/qc", 200 * 1024, 83);
  ExpectFsckClean();
}

}  // namespace
}  // namespace hl
