// Tests for the section 5.4 replica variant: extra copies of tertiary
// segments on other volumes, demand reads served by the "closest" copy.

#include <gtest/gtest.h>

#include "highlight/highlight.h"
#include "util/rng.h"

namespace hl {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HighLightConfig config;
    config.disks.push_back({Rz57Profile(), 8 * 1024});
    JukeboxProfile j = Hp6300MoProfile();
    j.num_slots = 4;
    j.volume_capacity_bytes = 16ull * 64 * kBlockSize;
    config.jukeboxes.push_back({j, false, 16});
    config.lfs.seg_size_blocks = 64;
    config.lfs.cache_max_segments = 8;
    auto hl = HighLightFs::Create(config, &clock_);
    ASSERT_TRUE(hl.ok());
    hl_ = std::move(*hl);
  }

  SimClock clock_;
  std::unique_ptr<HighLightFs> hl_;
};

TEST_F(ReplicaTest, ReplicasLandOnOtherVolumes) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(512 * 1024, 1)).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  Result<MigrationReport> r = hl_->Internals().migrator.MigrateFiles({*ino}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->segments_completed, 0u);

  // Every primary segment has one replica, on a different volume, flagged
  // kSegReplica and never counted as live.
  uint32_t replicas_found = 0;
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    const SegUsage& u = hl_->Internals().tseg_table.Get(t);
    if (!(u.flags & kSegReplica)) {
      continue;
    }
    ++replicas_found;
    EXPECT_EQ(u.live_bytes, 0u);
    EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(t),
              hl_->Internals().address_map.VolumeOfTseg(u.cache_tseg));
    std::vector<uint32_t> reps =
        hl_->Internals().tseg_table.ReplicasOf(u.cache_tseg);
    EXPECT_NE(std::find(reps.begin(), reps.end(), t), reps.end());
  }
  EXPECT_EQ(replicas_found, r->segments_completed);
}

TEST_F(ReplicaTest, FetchPrefersMountedReplicaVolume) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  auto data = Pattern(256 * 1024, 2);
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, data).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());

  // Mount the REPLICA's volume by touching it directly, then unmount... the
  // sim keeps volumes in drives until swapped; reading another volume's
  // data through drive 1 loads it. Find the replica volume and read a byte
  // from it so it occupies the read drive.
  uint32_t replica_vol = kNoSegment;
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    if (hl_->Internals().tseg_table.Get(t).flags & kSegReplica) {
      replica_vol = hl_->Internals().address_map.VolumeOfTseg(t);
      break;
    }
  }
  ASSERT_NE(replica_vol, kNoSegment);
  std::vector<uint8_t> sector(4096);
  ASSERT_TRUE(hl_->Internals().footprint
                  .Read(static_cast<int>(replica_vol), 0, sector)
                  .ok());
  ASSERT_TRUE(*hl_->Internals().footprint.VolumeMounted(static_cast<int>(replica_vol)));

  // Now demand-fetch the file: the replica volume is mounted, the primary's
  // is not necessarily, so replica reads should occur and data must match.
  uint64_t replica_reads_before = hl_->Internals().io_server.stats().replica_reads;
  std::vector<uint8_t> out(data.size());
  Result<size_t> n = hl_->fs().Read(*ino, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(hl_->Internals().io_server.stats().replica_reads, replica_reads_before);
}

TEST_F(ReplicaTest, ReplicaContentsIdenticalToPrimary) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(128 * 1024, 3)).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());

  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    const SegUsage& u = hl_->Internals().tseg_table.Get(t);
    if (!(u.flags & kSegReplica)) {
      continue;
    }
    uint64_t seg_bytes = hl_->Internals().address_map.SegBytes();
    std::vector<uint8_t> primary_img(seg_bytes), replica_img(seg_bytes);
    uint32_t pvol = hl_->Internals().address_map.VolumeOfTseg(u.cache_tseg);
    uint32_t rvol = hl_->Internals().address_map.VolumeOfTseg(t);
    ASSERT_TRUE(hl_->Internals().footprint
                    .Read(static_cast<int>(pvol),
                          hl_->Internals().address_map.ByteOffsetOnVolume(u.cache_tseg),
                          primary_img)
                    .ok());
    ASSERT_TRUE(hl_->Internals().footprint
                    .Read(static_cast<int>(rvol),
                          hl_->Internals().address_map.ByteOffsetOnVolume(t),
                          replica_img)
                    .ok());
    EXPECT_EQ(primary_img, replica_img);
  }
}

TEST_F(ReplicaTest, ReplicaCatalogSurvivesRemount) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(128 * 1024, 4)).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());
  ASSERT_TRUE(hl_->fs().Checkpoint().ok());

  uint32_t replicas_before = 0;
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    if (hl_->Internals().tseg_table.Get(t).flags & kSegReplica) {
      ++replicas_before;
    }
  }
  ASSERT_GT(replicas_before, 0u);
  ASSERT_TRUE(hl_->Remount().ok());
  uint32_t replicas_after = 0;
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    if (hl_->Internals().tseg_table.Get(t).flags & kSegReplica) {
      ++replicas_after;
    }
  }
  EXPECT_EQ(replicas_after, replicas_before);
}

TEST_F(ReplicaTest, CleaningPrimaryVolumeReleasesOrphanReplicas) {
  Result<uint32_t> ino = hl_->fs().Create("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(hl_->fs().Write(*ino, 0, Pattern(256 * 1024, 5)).ok());
  MigratorOptions opts;
  opts.replicas = 1;
  ASSERT_TRUE(hl_->Internals().migrator.MigrateFiles({*ino}, opts).ok());

  // The primary copies live on volume 0; clean it.
  ASSERT_TRUE(hl_->Internals().tertiary_cleaner.CleanVolume(0).ok());
  // No replica may still reference a segment on the cleaned volume.
  for (uint32_t t = 0; t < hl_->Internals().tseg_table.size(); ++t) {
    const SegUsage& u = hl_->Internals().tseg_table.Get(t);
    if (u.flags & kSegReplica) {
      EXPECT_NE(hl_->Internals().address_map.VolumeOfTseg(u.cache_tseg), 0u)
          << "orphan replica " << t;
    }
  }
  // Data remain readable.
  ASSERT_TRUE(hl_->DropCleanCacheLines().ok());
  std::vector<uint8_t> out(256 * 1024);
  ASSERT_TRUE(hl_->fs().Read(*ino, 0, out).ok());
  EXPECT_EQ(out, Pattern(256 * 1024, 5));
}

}  // namespace
}  // namespace hl
