// Tests for volumes, the jukebox robot, and the Footprint interface.

#include <gtest/gtest.h>

#include "sim/device_profile.h"
#include "tertiary/footprint.h"
#include "tertiary/jukebox.h"
#include "tertiary/volume.h"

namespace hl {
namespace {

std::vector<uint8_t> Fill(size_t n, uint8_t v) {
  return std::vector<uint8_t>(n, v);
}

TEST(VolumeTest, RoundTrip) {
  Volume v("t0", 1 << 20);
  auto data = Fill(4096, 0xAA);
  ASSERT_TRUE(v.Write(8192, data).ok());
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(v.Read(8192, out).ok());
  EXPECT_EQ(out, data);
}

TEST(VolumeTest, UnwrittenReadsZero) {
  Volume v("t0", 1 << 20);
  std::vector<uint8_t> out(512, 0xFF);
  ASSERT_TRUE(v.Read(0, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(VolumeTest, EndOfMediumOnShortCapacity) {
  Volume v("t0", 1 << 20);
  v.SetActualCapacity(8192);  // Compression fell short of nominal.
  auto data = Fill(4096, 1);
  EXPECT_TRUE(v.Write(0, data).ok());
  EXPECT_TRUE(v.Write(4096, data).ok());
  Status s = v.Write(8192, data);
  EXPECT_EQ(s.code(), ErrorCode::kEndOfMedium);
  // Nothing was written by the failed op.
  std::vector<uint8_t> out(4096, 0xFF);
  // Reading past actual (but within nominal) capacity still works and is 0.
  ASSERT_TRUE(v.Read(8192, out).ok());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(VolumeTest, MarkedFullRefusesWrites) {
  Volume v("t0", 1 << 20);
  v.MarkFull();
  EXPECT_EQ(v.Write(0, Fill(16, 0)).code(), ErrorCode::kEndOfMedium);
}

TEST(VolumeTest, WormRefusesRewrite) {
  Volume v("w0", 1 << 20, /*write_once=*/true);
  auto data = Fill(4096, 2);
  ASSERT_TRUE(v.Write(0, data).ok());
  EXPECT_EQ(v.Write(0, data).code(), ErrorCode::kNotSupported);
  // A disjoint extent is fine.
  EXPECT_TRUE(v.Write(4096, data).ok());
  // Overlap is rejected too.
  EXPECT_FALSE(v.Write(6000, data).ok());
  // Erase is impossible on WORM media.
  EXPECT_EQ(v.Erase().code(), ErrorCode::kNotSupported);
}

TEST(VolumeTest, EraseResetsRewritable) {
  Volume v("t0", 1 << 20);
  ASSERT_TRUE(v.Write(0, Fill(4096, 3)).ok());
  v.MarkFull();
  ASSERT_TRUE(v.Erase().ok());
  EXPECT_FALSE(v.marked_full());
  EXPECT_TRUE(v.Write(0, Fill(4096, 4)).ok());
}

class JukeboxTest : public ::testing::Test {
 protected:
  JukeboxTest() : jukebox_(Hp6300MoProfile(), &clock_) {}
  SimClock clock_;
  Jukebox jukebox_;
};

TEST_F(JukeboxTest, FirstAccessPaysMediaSwap) {
  std::vector<uint8_t> out(4096);
  SimTime before = clock_.Now();
  ASSERT_TRUE(jukebox_.Read(0, 0, out).ok());
  // 13.5 s swap dominates.
  EXPECT_GT(clock_.Now() - before, 13'000'000u);
  EXPECT_EQ(jukebox_.media_swaps(), 1u);

  // Second read of the same volume: no swap.
  before = clock_.Now();
  ASSERT_TRUE(jukebox_.Read(0, 4096, out).ok());
  EXPECT_LT(clock_.Now() - before, 1'000'000u);
  EXPECT_EQ(jukebox_.media_swaps(), 1u);
}

TEST_F(JukeboxTest, WriteDriveAndReadDriveAreSeparate) {
  auto data = Fill(4096, 7);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(jukebox_.Write(0, 0, data).ok());   // Mounts slot 0 in drive 0.
  ASSERT_TRUE(jukebox_.Read(1, 0, out).ok());     // Mounts slot 1 in drive 1.
  EXPECT_EQ(jukebox_.media_swaps(), 2u);
  // Reading the write-drive's platter does not swap anything.
  ASSERT_TRUE(jukebox_.Read(0, 0, out).ok());
  EXPECT_EQ(jukebox_.media_swaps(), 2u);
  EXPECT_EQ(out, data);
}

TEST_F(JukeboxTest, TransferRateMatchesMoProfile) {
  auto data = Fill(1 << 20, 9);
  ASSERT_TRUE(jukebox_.Write(0, 0, data).ok());  // Pays the swap.
  SimTime before = clock_.Now();
  ASSERT_TRUE(jukebox_.Write(0, 1 << 20, data).ok());
  double secs = static_cast<double>(clock_.Now() - before) / kUsPerSec;
  // 1 MB at 204 KB/s ~= 5.0 s.
  EXPECT_NEAR(secs, 1024.0 / 204.0, 0.5);
}

TEST_F(JukeboxTest, RejectsBadSlot) {
  std::vector<uint8_t> out(16);
  EXPECT_EQ(jukebox_.Read(99, 0, out).code(), ErrorCode::kOutOfRange);
}

TEST(JukeboxBusTest, SwapHogsSharedBus) {
  SimClock clock;
  Resource bus("scsi0");
  Jukebox jb(Hp6300MoProfile(), &clock, &bus);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(jb.Read(0, 0, out).ok());
  // The swap held the bus: its free time covers the swap interval.
  EXPECT_GE(bus.free_at(), 13'500'000u);
}

TEST(FootprintTest, FlatVolumeNamespace) {
  SimClock clock;
  Jukebox a(Hp6300MoProfile(), &clock);   // 32 slots.
  Jukebox b(SonyWormProfile(), &clock, nullptr, /*write_once=*/true);
  Footprint fp({&a, &b});
  EXPECT_EQ(fp.NumVolumes(), 32 + 100);

  auto data = Fill(4096, 5);
  ASSERT_TRUE(fp.Write(0, 0, data).ok());
  ASSERT_TRUE(fp.Write(32, 0, data).ok());  // First WORM volume.
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(fp.Read(32, 0, out).ok());
  EXPECT_EQ(out, data);
  // WORM behaviour carries through the flat namespace.
  EXPECT_EQ(fp.Write(32, 0, data).code(), ErrorCode::kNotSupported);
}

TEST(FootprintTest, VolumeFullBookkeeping) {
  SimClock clock;
  Jukebox a(Hp6300MoProfile(), &clock);
  Footprint fp({&a});
  ASSERT_TRUE(fp.MarkVolumeFull(3).ok());
  Result<bool> full = fp.VolumeFull(3);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(*full);
  EXPECT_EQ(fp.Write(3, 0, Fill(16, 0)).code(), ErrorCode::kEndOfMedium);
  ASSERT_TRUE(fp.EraseVolume(3).ok());
  EXPECT_FALSE(*fp.VolumeFull(3));
}

TEST(FootprintTest, RejectsUnknownVolume) {
  SimClock clock;
  Jukebox a(Hp6300MoProfile(), &clock);
  Footprint fp({&a});
  EXPECT_FALSE(fp.VolumeCapacity(32).ok());
  EXPECT_FALSE(fp.Read(-1, 0, std::span<uint8_t>()).ok());
}

}  // namespace
}  // namespace hl
