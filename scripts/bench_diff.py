#!/usr/bin/env python3
"""Diff a bench run's headline values against a committed baseline.

Usage: bench_diff.py ACTUAL_BENCH_JSON BASELINE_JSON [--rtol FRACTION]

Compares the "values" section of a freshly-written BENCH_<name>.json against
a committed baseline (bench/baselines/<name>.json). Keys must match in both
directions — a value that appears or disappears is drift, not noise. Numeric
values compare within a relative tolerance band (--rtol, default 0: the
simulation is deterministic, so bit-identical is the expectation; the band
exists for deliberate timing-model changes, where a loosened one-off run
beats silently re-baselining). Strings compare exactly.

Exit status: 0 on match, 1 on drift, 2 on usage/IO errors.
"""

import argparse
import json
import sys


def load_values(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "values" not in doc or not isinstance(doc["values"], dict):
        print(f"bench_diff: {path} has no \"values\" object", file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), doc["values"]


def numeric(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    parser = argparse.ArgumentParser(
        description="Diff bench headline values against a baseline.")
    parser.add_argument("actual", help="BENCH_<name>.json from a fresh run")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for numeric values "
                             "(default 0: exact)")
    args = parser.parse_args()

    bench, actual = load_values(args.actual)
    _, baseline = load_values(args.baseline)

    drift = []
    for key in sorted(set(actual) | set(baseline)):
        if key not in actual:
            drift.append(f"missing from run:      {key} "
                         f"(baseline: {baseline[key]!r})")
            continue
        if key not in baseline:
            drift.append(f"missing from baseline: {key} "
                         f"(run: {actual[key]!r})")
            continue
        a, b = actual[key], baseline[key]
        if numeric(a) and numeric(b):
            bound = args.rtol * max(abs(a), abs(b))
            if abs(a - b) > bound:
                rel = abs(a - b) / max(abs(b), 1e-12)
                drift.append(f"value drift:           {key}: {b!r} -> {a!r} "
                             f"(rel {rel:.2e}, rtol {args.rtol:.2e})")
        elif a != b:
            drift.append(f"value drift:           {key}: {b!r} -> {a!r}")

    if drift:
        print(f"bench_diff: {bench}: {len(drift)} drift(s) vs "
              f"{args.baseline}:")
        for line in drift:
            print(f"  {line}")
        return 1
    print(f"bench_diff: {bench}: {len(actual)} values match "
          f"{args.baseline} (rtol {args.rtol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
