#!/usr/bin/env bash
# Full pre-merge check: build the default and asan presets, run the test
# suite under both. Usage: scripts/check.sh [--fast]  (--fast skips asan).
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

run() {
  local preset=$1
  echo "==> configure ($preset)"
  cmake --preset "$preset" >/dev/null
  echo "==> build ($preset)"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test ($preset)"
  ctest --preset "$preset" -j "$jobs"
}

run default
if [[ $fast -eq 0 ]]; then
  run asan
  # The fault surface (injection, retry, scrub, quarantine) gets an extra
  # dedicated pass under the sanitizers: memory bugs love error paths.
  echo "==> fault-label tests (asan)"
  ctest --preset asan -L fault -j "$jobs"
  # The observability surface (spans, sampler, exporters) likewise: the
  # tracer's unwind and ring-eviction paths are where lifetime bugs hide.
  echo "==> observability-label tests (asan)"
  ctest --preset asan -L observability -j "$jobs"
fi

# Bench smoke: the cheapest bench (raw device rates, ~1 s) runs end to end
# and its headline values must match the committed baseline bit-for-bit —
# observation code must never perturb the simulation. Table 3 rides along
# because it also covers the async read pipeline's batched-fault scenario
# (and, flag off, proves the pipeline plumbing changed no legacy numbers).
echo "==> bench smoke (table5 + table3 vs baselines)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cmake --build --preset default --target table5_raw_devices \
  table3_access_delays -j "$jobs" >/dev/null
(cd "$smoke_dir" && "$OLDPWD"/build/bench/table5_raw_devices >/dev/null)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_table5_raw_devices.json \
  bench/baselines/table5_raw_devices.json
(cd "$smoke_dir" && "$OLDPWD"/build/bench/table3_access_delays >/dev/null)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_table3_access_delays.json \
  bench/baselines/table3_access_delays.json

# Engine-ops gate: the TsegTable bookkeeping indices must agree with their
# linear-scan references, Store() must coalesce, and the migration-pass
# loop must hold its >= 5x wall-clock speedup floor over the pre-index
# implementation (see bench/engine_ops.cc).
echo "==> engine-ops gate (deterministic smoke vs baseline)"
cmake --build --preset default --target engine_ops -j "$jobs" >/dev/null
(cd "$smoke_dir" && "$OLDPWD"/build/bench/engine_ops --smoke)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_engine_ops.json \
  bench/baselines/engine_ops.json

# Federation gate: the central stager drives 4 shards through the
# FetchBackend seam under a seeded Zipf/diurnal population; the smoke
# population's headline values (tail delays, throughput, fair-share
# counters) must match the committed baseline bit-for-bit.
echo "==> federation gate (stager smoke vs baseline)"
cmake --build --preset default --target federation_scale -j "$jobs" >/dev/null
(cd "$smoke_dir" && "$OLDPWD"/build/bench/federation_scale --smoke >/dev/null)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_federation_scale_smoke.json \
  bench/baselines/federation_scale_smoke.json

# Parallel-determinism gate: the same smoke population with every shard on
# its own timeline (--parallel_shards) must produce byte-identical headline
# values — both modes are diffed against the same committed baseline. The
# run must also sustain the committed sim-ops/sec wall-clock floor, so an
# engine slowdown cannot hide behind bit-identical simulated output.
echo "==> parallel-shards gate (determinism + ops floor)"
(cd "$smoke_dir" && \
  "$OLDPWD"/build/bench/federation_scale --smoke --parallel_shards >/dev/null)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_federation_scale_smoke.json \
  bench/baselines/federation_scale_smoke.json
python3 - "$smoke_dir"/BENCH_federation_scale_smoke.json \
  bench/baselines/federation_scale_opsfloor.txt <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rate = float(doc["info"]["sim_ops_per_sec"])
floor = float(open(sys.argv[2]).read().split()[0])
print(f"  federation_scale --parallel_shards: {rate:.0f} sim-ops/s "
      f"(committed floor: {floor:.0f})")
sys.exit(0 if rate >= floor else 1)
EOF

# Site-disaster gate: kill one of two replicated sites mid-workload, fail
# demand over to the survivor, rebuild the dead site from its peer via
# anti-entropy. The smoke drill's recovery time, re-shipped byte count and
# zero-data-loss gates are fully deterministic and must match the baseline
# bit-for-bit.
echo "==> site disaster gate (drill smoke vs baseline)"
cmake --build --preset default --target site_disaster -j "$jobs" >/dev/null
(cd "$smoke_dir" && "$OLDPWD"/build/bench/site_disaster --smoke >/dev/null)
python3 scripts/bench_diff.py "$smoke_dir"/BENCH_site_disaster_smoke.json \
  bench/baselines/site_disaster_smoke.json
echo "All checks passed."
