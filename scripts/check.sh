#!/usr/bin/env bash
# Full pre-merge check: build the default and asan presets, run the test
# suite under both. Usage: scripts/check.sh [--fast]  (--fast skips asan).
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

run() {
  local preset=$1
  echo "==> configure ($preset)"
  cmake --preset "$preset" >/dev/null
  echo "==> build ($preset)"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test ($preset)"
  ctest --preset "$preset" -j "$jobs"
}

run default
if [[ $fast -eq 0 ]]; then
  run asan
  # The fault surface (injection, retry, scrub, quarantine) gets an extra
  # dedicated pass under the sanitizers: memory bugs love error paths.
  echo "==> fault-label tests (asan)"
  ctest --preset asan -L fault -j "$jobs"
fi
echo "All checks passed."
